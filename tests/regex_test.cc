#include "rpq/regex_parser.h"

#include <gtest/gtest.h>

#include "automata/reference_matcher.h"
#include "common/rng.h"
#include "test_util.h"

namespace omega {
namespace {

using testing::Rx;

std::string Reparse(const std::string& text) {
  return ToString(*Rx(text));
}

TEST(RegexParserTest, Atoms) {
  EXPECT_EQ(Rx("a")->op, RegexOp::kLabel);
  EXPECT_EQ(Rx("a")->dir, Direction::kOutgoing);
  EXPECT_EQ(Rx("a-")->dir, Direction::kIncoming);
  EXPECT_EQ(Rx("_")->op, RegexOp::kWildcard);
  EXPECT_EQ(Rx("_-")->dir, Direction::kIncoming);
  EXPECT_EQ(Rx("()")->op, RegexOp::kEpsilon);
}

TEST(RegexParserTest, PaperQueries) {
  // Every regex from Fig. 4 and Fig. 9 parses and round-trips.
  for (const char* text :
       {"type-", "type-.qualif-", "type-.job-", "job.type", "next+",
        "prereq+", "next+|(prereq+.next)", "type.prereq+",
        "prereq*.next+.prereq", "type-.job-.next", "level-.qualif-.prereq",
        "bornIn-.marriedTo.hasChild", "hasChild.gradFrom.gradFrom-.hasWonPrize",
        "type-.locatedIn-", "directed.married.married+.playsFor",
        "isConnectedTo.wasBornIn", "imports.exports-",
        "type-.happenedIn-.participatedIn-", "type.type-.actedIn",
        "(livesIn-.hasCurrency)|(locatedIn-.gradFrom)"}) {
    Result<RegexPtr> r = ParseRegex(text);
    ASSERT_TRUE(r.ok()) << text << ": " << r.status().ToString();
    // Round-trip: unparse -> reparse -> structural equality.
    Result<RegexPtr> again = ParseRegex(ToString(**r));
    ASSERT_TRUE(again.ok()) << ToString(**r);
    EXPECT_TRUE(RegexEquals(**r, **again)) << text;
  }
}

TEST(RegexParserTest, PrecedenceAlternationVsConcat) {
  // a.b|c == (a.b)|c, not a.(b|c).
  RegexPtr r = Rx("a.b|c");
  ASSERT_EQ(r->op, RegexOp::kAlternation);
  EXPECT_EQ(r->children[0]->op, RegexOp::kConcat);
  EXPECT_EQ(r->children[1]->op, RegexOp::kLabel);
}

TEST(RegexParserTest, PostfixBinding) {
  RegexPtr r = Rx("a.b*");
  ASSERT_EQ(r->op, RegexOp::kConcat);
  EXPECT_EQ(r->children[1]->op, RegexOp::kStar);
  RegexPtr g = Rx("(a.b)*");
  EXPECT_EQ(g->op, RegexOp::kStar);
}

TEST(RegexParserTest, ReversedLabelWithClosure) {
  RegexPtr r = Rx("a-*");
  ASSERT_EQ(r->op, RegexOp::kStar);
  EXPECT_EQ(r->children[0]->dir, Direction::kIncoming);
}

TEST(RegexParserTest, Whitespace) {
  EXPECT_EQ(Reparse(" a . b | c "), "a.b|c");
}

TEST(RegexParserTest, Errors) {
  for (const char* bad :
       {"", "a..b", "|a", "a|", "(a", "a)", "a--", "(a.b)-", "*a", "a b",
        ".a", "a.", "a+*-"}) {
    EXPECT_FALSE(ParseRegex(bad).ok()) << bad;
  }
}

TEST(RegexAstTest, CloneIsDeepAndEqual) {
  RegexPtr r = Rx("(a|b-).c+");
  RegexPtr copy = Clone(*r);
  EXPECT_TRUE(RegexEquals(*r, *copy));
  copy->children[1]->children[0]->label = "zzz";
  EXPECT_FALSE(RegexEquals(*r, *copy));
}

TEST(RegexAstTest, ReverseSimple) {
  EXPECT_EQ(ToString(*ReverseRegex(*Rx("a.b"))), "b-.a-");
  EXPECT_EQ(ToString(*ReverseRegex(*Rx("a-"))), "a");
  EXPECT_EQ(ToString(*ReverseRegex(*Rx("a|b"))), "a-|b-");
  EXPECT_EQ(ToString(*ReverseRegex(*Rx("a*"))), "a-*");
  EXPECT_EQ(ToString(*ReverseRegex(*Rx("(a.b)+|c"))), "(b-.a-)+|c-");
  EXPECT_EQ(ToString(*ReverseRegex(*Rx("_")))[0], '_');
}

TEST(RegexAstTest, ReverseIsInvolution) {
  Rng rng(31);
  const std::vector<std::string> labels = {"a", "b", "c"};
  for (int i = 0; i < 50; ++i) {
    RegexPtr r = testing::RandomRegex(&rng, labels, 3);
    RegexPtr twice = ReverseRegex(*ReverseRegex(*r));
    EXPECT_TRUE(RegexEquals(*r, *twice)) << ToString(*r);
  }
}

TEST(RegexAstTest, ReversedLanguageMatchesReversedPaths) {
  Rng rng(77);
  const std::vector<std::string> labels = {"a", "b"};
  for (int i = 0; i < 40; ++i) {
    RegexPtr r = testing::RandomRegex(&rng, labels, 2);
    RegexPtr rev = ReverseRegex(*r);
    // Random path of length <= 4.
    std::vector<LabelStep> path;
    const size_t len = rng.NextBounded(5);
    for (size_t k = 0; k < len; ++k) {
      path.push_back({labels[rng.NextBounded(labels.size())],
                      rng.NextBool(0.5) ? Direction::kOutgoing
                                        : Direction::kIncoming});
    }
    std::vector<LabelStep> reversed_path(path.rbegin(), path.rend());
    for (LabelStep& step : reversed_path) step.dir = Reverse(step.dir);
    EXPECT_EQ(RegexMatchesPath(*r, path), RegexMatchesPath(*rev, reversed_path))
        << ToString(*r);
  }
}

TEST(RegexAstTest, TopLevelAlternatives) {
  RegexPtr alt = Rx("a|b.c|d");
  EXPECT_EQ(TopLevelAlternatives(*alt).size(), 3u);
  RegexPtr non_alt = Rx("(a|b).c");
  EXPECT_EQ(TopLevelAlternatives(*non_alt).size(), 1u);
}

TEST(ReferenceMatcherTest, BasicMembership) {
  RegexPtr r = Rx("a.b*");
  std::vector<LabelStep> empty;
  EXPECT_FALSE(RegexMatchesPath(*r, empty));
  std::vector<LabelStep> a = {{"a", Direction::kOutgoing}};
  EXPECT_TRUE(RegexMatchesPath(*r, a));
  std::vector<LabelStep> abb = {{"a", Direction::kOutgoing},
                                {"b", Direction::kOutgoing},
                                {"b", Direction::kOutgoing}};
  EXPECT_TRUE(RegexMatchesPath(*r, abb));
  std::vector<LabelStep> ba = {{"b", Direction::kOutgoing},
                               {"a", Direction::kOutgoing}};
  EXPECT_FALSE(RegexMatchesPath(*r, ba));
}

TEST(ReferenceMatcherTest, EnumerateLanguage) {
  RegexPtr r = Rx("a|b.b");
  auto lang = EnumerateLanguage(*r, {"a", "b"}, 3);
  // {a, bb}
  EXPECT_EQ(lang.size(), 2u);
  auto star = EnumerateLanguage(*Rx("a*"), {"a"}, 3);
  EXPECT_EQ(star.size(), 4u);  // ε, a, aa, aaa
  auto plus = EnumerateLanguage(*Rx("a+"), {"a"}, 3);
  EXPECT_EQ(plus.size(), 3u);  // a, aa, aaa
}

TEST(ReferenceMatcherTest, EditDistance) {
  EditCosts costs;
  std::vector<LabelStep> ab = {{"a", Direction::kOutgoing},
                               {"b", Direction::kOutgoing}};
  std::vector<LabelStep> ac = {{"a", Direction::kOutgoing},
                               {"c", Direction::kOutgoing}};
  std::vector<LabelStep> a = {{"a", Direction::kOutgoing}};
  EXPECT_EQ(EditDistance(ab, ab, costs), 0);
  EXPECT_EQ(EditDistance(ab, ac, costs), 1);   // substitute b -> c
  EXPECT_EQ(EditDistance(ab, a, costs), 1);    // delete b
  EXPECT_EQ(EditDistance(a, ab, costs), 1);    // insert b
  // Reversed direction counts as a different symbol.
  std::vector<LabelStep> a_rev = {{"a", Direction::kIncoming}};
  EXPECT_EQ(EditDistance(a, a_rev, costs), 1);
}

}  // namespace
}  // namespace omega
