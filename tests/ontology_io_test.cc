#include "ontology/ontology_io.h"

#include <gtest/gtest.h>

#include <fstream>

namespace omega {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

Ontology Sample() {
  OntologyBuilder b;
  EXPECT_TRUE(b.AddSubclass("Work", "Episode").ok());
  EXPECT_TRUE(b.AddSubclass("FT", "Work").ok());
  EXPECT_TRUE(b.AddSubproperty("next", "isEpisodeLink").ok());
  EXPECT_TRUE(b.SetDomain("next", "Episode").ok());
  EXPECT_TRUE(b.SetRange("next", "Episode").ok());
  Result<Ontology> o = std::move(b).Finalize();
  EXPECT_TRUE(o.ok());
  return std::move(o).value();
}

TEST(OntologyIoTest, RoundTrip) {
  const Ontology original = Sample();
  const std::string path = TempPath("roundtrip.ontology");
  ASSERT_TRUE(SaveOntology(original, path).ok());
  Result<Ontology> loaded = LoadOntology(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->NumClasses(), original.NumClasses());
  EXPECT_EQ(loaded->NumProperties(), original.NumProperties());
  auto ft = loaded->FindClass("FT");
  ASSERT_TRUE(ft.has_value());
  auto ancestors = loaded->ClassAncestors(*ft);
  ASSERT_EQ(ancestors.size(), 2u);
  EXPECT_EQ(loaded->ClassName(ancestors[1].element), "Episode");
  auto next = loaded->FindProperty("next");
  ASSERT_TRUE(next.has_value());
  ASSERT_TRUE(loaded->DomainOf(*next).has_value());
  EXPECT_EQ(loaded->ClassName(*loaded->DomainOf(*next)), "Episode");
}

TEST(OntologyIoTest, CommentsAndBlankLinesIgnored) {
  const std::string path = TempPath("comments.ontology");
  std::ofstream(path) << "# header\n\nsc\tA\tB\n  \nsp\tp\tq\n";
  Result<Ontology> loaded = LoadOntology(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->FindClass("A").has_value());
  EXPECT_TRUE(loaded->FindProperty("q").has_value());
}

TEST(OntologyIoTest, ClassNamesWithSpacesSurvive) {
  OntologyBuilder b;
  ASSERT_TRUE(
      b.AddSubclass("BTEC Introductory Diploma", "Entry Level").ok());
  Result<Ontology> o = std::move(b).Finalize();
  ASSERT_TRUE(o.ok());
  const std::string path = TempPath("spaces.ontology");
  ASSERT_TRUE(SaveOntology(*o, path).ok());
  Result<Ontology> loaded = LoadOntology(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->FindClass("BTEC Introductory Diploma").has_value());
}

TEST(OntologyIoTest, MissingFile) {
  Result<Ontology> r = LoadOntology(TempPath("missing.ontology"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(OntologyIoTest, RejectsMalformedLine) {
  const std::string path = TempPath("bad.ontology");
  std::ofstream(path) << "sc\tonly-two-fields\n";
  EXPECT_FALSE(LoadOntology(path).ok());
}

TEST(OntologyIoTest, RejectsUnknownKind) {
  const std::string path = TempPath("unknown.ontology");
  std::ofstream(path) << "subclassof\tA\tB\n";
  Result<Ontology> r = LoadOntology(path);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(OntologyIoTest, RejectsCycleInFile) {
  const std::string path = TempPath("cycle.ontology");
  std::ofstream(path) << "sc\tA\tB\nsc\tB\tA\n";
  EXPECT_FALSE(LoadOntology(path).ok());
}

TEST(OntologyIoTest, DuplicateStatementsTolerated) {
  const std::string path = TempPath("dups.ontology");
  std::ofstream(path) << "sc\tA\tB\nsc\tA\tB\n";
  Result<Ontology> r = LoadOntology(path);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->ClassAncestors(*r->FindClass("A")).size(), 1u);
}

}  // namespace
}  // namespace omega
