// Reachability & distance index tests: interval construction on known DAGs
// (chains, diamonds, SCC cycles, self-loops, disconnected nodes), the
// sigma-union entry, the interval-budget fallback, distance-sketch lower
// bounds, the lazily-building IndexManager, the IndexProbeStream, engine
// substitution (EXPLAIN marker + identical answers), and snapshot
// persistence of both structures including v1 backward compatibility.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "eval/query_engine.h"
#include "index/distance_sketch.h"
#include "index/index_manager.h"
#include "index/index_probe_stream.h"
#include "index/reachability_index.h"
#include "snapshot/snapshot_format.h"
#include "snapshot/snapshot_reader.h"
#include "snapshot/snapshot_writer.h"
#include "store/graph_builder.h"
#include "test_util.h"

namespace omega {
namespace {

using omega::testing::CanonAnswers;
using omega::testing::MakeGraph;
using omega::testing::Qy;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

NodeId Node(const GraphStore& g, const std::string& name) {
  std::optional<NodeId> n = g.FindNode(name);
  EXPECT_TRUE(n.has_value()) << name;
  return n.value_or(kInvalidNode);
}

LabelId Label(const GraphStore& g, const std::string& name) {
  std::optional<LabelId> l = g.labels().Find(name);
  EXPECT_TRUE(l.has_value()) << name;
  return l.value_or(kInvalidLabel);
}

/// Reference reachability: BFS over `label` edges in `dir`.
bool BfsReachable(const GraphStore& g, LabelId label, Direction dir, NodeId u,
                  NodeId v) {
  std::vector<bool> seen(g.NumNodes(), false);
  std::queue<NodeId> frontier;
  seen[u] = true;
  frontier.push(u);
  while (!frontier.empty()) {
    const NodeId n = frontier.front();
    frontier.pop();
    if (n == v) return true;
    for (const NodeId m : g.Neighbors(n, label, dir)) {
      if (!seen[m]) {
        seen[m] = true;
        frontier.push(m);
      }
    }
  }
  return false;
}

// --- LabelReachability construction ------------------------------------------

TEST(ReachabilityIndexTest, ChainIsFullyOrdered) {
  GraphStore g = MakeGraph(
      {{"x0", "a", "x1"}, {"x1", "a", "x2"}, {"x2", "a", "x3"}});
  std::optional<LabelReachability> reach =
      ReachabilityIndex::BuildFor(g, Label(g, "a"), Direction::kOutgoing);
  ASSERT_TRUE(reach.has_value());
  EXPECT_EQ(reach->num_components(), 4u);
  EXPECT_TRUE(reach->Validate(g.NumNodes(), /*deep=*/true).ok());
  const NodeId x0 = Node(g, "x0"), x3 = Node(g, "x3");
  EXPECT_TRUE(reach->Reachable(x0, x3));
  EXPECT_TRUE(reach->Reachable(x0, x0));
  EXPECT_FALSE(reach->Reachable(x3, x0));
  EXPECT_FALSE(reach->Reachable(Node(g, "x2"), Node(g, "x1")));
}

TEST(ReachabilityIndexTest, DiamondMergesBranches) {
  GraphStore g = MakeGraph({{"a", "e", "b"},
                            {"a", "e", "c"},
                            {"b", "e", "d"},
                            {"c", "e", "d"}});
  std::optional<LabelReachability> reach =
      ReachabilityIndex::BuildFor(g, Label(g, "e"), Direction::kOutgoing);
  ASSERT_TRUE(reach.has_value());
  EXPECT_TRUE(reach->Validate(g.NumNodes(), /*deep=*/true).ok());
  EXPECT_TRUE(reach->Reachable(Node(g, "a"), Node(g, "d")));
  EXPECT_TRUE(reach->Reachable(Node(g, "b"), Node(g, "d")));
  EXPECT_FALSE(reach->Reachable(Node(g, "b"), Node(g, "c")));
  EXPECT_FALSE(reach->Reachable(Node(g, "d"), Node(g, "a")));
}

TEST(ReachabilityIndexTest, CycleCondensesToOneComponent) {
  GraphStore g = MakeGraph({{"a", "e", "b"},
                            {"b", "e", "c"},
                            {"c", "e", "a"},
                            {"c", "e", "d"}});
  std::optional<LabelReachability> reach =
      ReachabilityIndex::BuildFor(g, Label(g, "e"), Direction::kOutgoing);
  ASSERT_TRUE(reach.has_value());
  EXPECT_EQ(reach->num_components(), 2u);  // {a,b,c} + {d}
  EXPECT_TRUE(reach->Validate(g.NumNodes(), /*deep=*/true).ok());
  // Inside the SCC everything reaches everything, both ways.
  EXPECT_TRUE(reach->Reachable(Node(g, "b"), Node(g, "a")));
  EXPECT_TRUE(reach->Reachable(Node(g, "a"), Node(g, "c")));
  EXPECT_TRUE(reach->Reachable(Node(g, "a"), Node(g, "d")));
  EXPECT_FALSE(reach->Reachable(Node(g, "d"), Node(g, "a")));
}

TEST(ReachabilityIndexTest, SelfLoopIsItsOwnComponent) {
  GraphStore g = MakeGraph({{"a", "e", "a"}, {"a", "e", "b"}});
  std::optional<LabelReachability> reach =
      ReachabilityIndex::BuildFor(g, Label(g, "e"), Direction::kOutgoing);
  ASSERT_TRUE(reach.has_value());
  EXPECT_EQ(reach->num_components(), 2u);
  EXPECT_TRUE(reach->Validate(g.NumNodes(), /*deep=*/true).ok());
  EXPECT_TRUE(reach->Reachable(Node(g, "a"), Node(g, "a")));
  EXPECT_TRUE(reach->Reachable(Node(g, "a"), Node(g, "b")));
  EXPECT_FALSE(reach->Reachable(Node(g, "b"), Node(g, "a")));
}

TEST(ReachabilityIndexTest, NodesWithoutTheLabelReachOnlyThemselves) {
  // "c" and "d" carry only `other` edges, so the `e` index leaves them out.
  GraphStore g = MakeGraph({{"a", "e", "b"}, {"c", "other", "d"}});
  std::optional<LabelReachability> reach =
      ReachabilityIndex::BuildFor(g, Label(g, "e"), Direction::kOutgoing);
  ASSERT_TRUE(reach.has_value());
  EXPECT_EQ(reach->LocalId(Node(g, "c")), LabelReachability::kNotIndexed);
  EXPECT_FALSE(reach->ComponentOf(Node(g, "c")).has_value());
  EXPECT_TRUE(reach->Reachable(Node(g, "c"), Node(g, "c")));
  EXPECT_FALSE(reach->Reachable(Node(g, "c"), Node(g, "d")));
  EXPECT_FALSE(reach->Reachable(Node(g, "a"), Node(g, "c")));
}

TEST(ReachabilityIndexTest, IncomingDirectionReversesEdges) {
  GraphStore g = MakeGraph({{"x0", "a", "x1"}, {"x1", "a", "x2"}});
  std::optional<LabelReachability> reach =
      ReachabilityIndex::BuildFor(g, Label(g, "a"), Direction::kIncoming);
  ASSERT_TRUE(reach.has_value());
  EXPECT_TRUE(reach->Reachable(Node(g, "x2"), Node(g, "x0")));
  EXPECT_FALSE(reach->Reachable(Node(g, "x0"), Node(g, "x2")));
}

TEST(ReachabilityIndexTest, AgreesWithBfsOnACraftedGraph) {
  GraphStore g = MakeGraph({{"a", "e", "b"},
                            {"b", "e", "c"},
                            {"c", "e", "b"},  // b <-> c cycle
                            {"c", "e", "d"},
                            {"a", "e", "d"},
                            {"d", "e", "d"},  // self loop
                            {"f", "e", "a"}});
  for (const Direction dir : {Direction::kOutgoing, Direction::kIncoming}) {
    std::optional<LabelReachability> reach =
        ReachabilityIndex::BuildFor(g, Label(g, "e"), dir);
    ASSERT_TRUE(reach.has_value());
    EXPECT_TRUE(reach->Validate(g.NumNodes(), /*deep=*/true).ok());
    for (NodeId u = 0; u < g.NumNodes(); ++u) {
      for (NodeId v = 0; v < g.NumNodes(); ++v) {
        EXPECT_EQ(reach->Reachable(u, v),
                  BfsReachable(g, Label(g, "e"), dir, u, v))
            << "u=" << u << " v=" << v << " dir=" << static_cast<int>(dir);
      }
    }
  }
}

TEST(ReachabilityIndexTest, IntervalBudgetFallsBackToNullopt) {
  GraphStore g = MakeGraph(
      {{"x0", "a", "x1"}, {"x1", "a", "x2"}, {"x2", "a", "x3"}});
  ReachabilityBuildOptions tiny;
  tiny.interval_budget_factor = 0;
  tiny.interval_budget_slack = 0;
  EXPECT_FALSE(ReachabilityIndex::BuildFor(g, Label(g, "a"),
                                           Direction::kOutgoing, tiny)
                   .has_value());
}

TEST(ReachabilityIndexTest, SigmaUnionSpansLabelsAndTypeEdges) {
  GraphBuilder builder;
  EXPECT_TRUE(builder.AddEdge("a", "e", "b").ok());
  EXPECT_TRUE(builder.AddEdge("b", "f", "c").ok());
  EXPECT_TRUE(builder.AddEdge("c", "type", "K").ok());
  GraphStore g = std::move(builder).Finalize();

  const ReachabilityIndex index = ReachabilityIndex::BuildAll(g);
  const LabelReachability* sigma =
      index.Find(ReachabilityIndex::kSigmaLabel, Direction::kOutgoing);
  ASSERT_NE(sigma, nullptr);
  EXPECT_TRUE(sigma->Validate(g.NumNodes(), /*deep=*/true).ok());
  // The union crosses label boundaries and follows type edges, exactly like
  // the wildcard's traversal.
  EXPECT_TRUE(sigma->Reachable(Node(g, "a"), Node(g, "c")));
  EXPECT_TRUE(sigma->Reachable(Node(g, "a"), Node(g, "K")));
  EXPECT_FALSE(sigma->Reachable(Node(g, "K"), Node(g, "a")));
  // Per-label entry sees only its own edges.
  const LabelReachability* e = index.Find(Label(g, "e"), Direction::kOutgoing);
  ASSERT_NE(e, nullptr);
  EXPECT_FALSE(e->Reachable(Node(g, "a"), Node(g, "c")));
}

// --- DistanceSketch ----------------------------------------------------------

TEST(DistanceSketchTest, LowerBoundsAreSoundOnAChain) {
  GraphStore g = MakeGraph({{"x0", "a", "x1"},
                            {"x1", "a", "x2"},
                            {"x2", "a", "x3"},
                            {"x3", "a", "x4"},
                            {"x4", "a", "x5"}});
  DistanceSketchOptions options;
  options.num_hubs = 2;
  const DistanceSketch sketch = DistanceSketch::Build(g, options);
  ASSERT_FALSE(sketch.empty());
  // Undirected hop distance on a chain is |i - j|; every bound must respect
  // it and the end-to-end bound must be positive (some hub separates them).
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      const uint32_t lb = sketch.LowerBound(u, v);
      ASSERT_NE(lb, DistanceSketch::kUnreachable);
      const uint32_t true_dist = u > v ? u - v : v - u;
      EXPECT_LE(lb, true_dist);
    }
  }
  EXPECT_GT(sketch.LowerBound(Node(g, "x0"), Node(g, "x5")), 0u);
  EXPECT_EQ(sketch.LowerBound(Node(g, "x2"), Node(g, "x2")), 0u);
}

TEST(DistanceSketchTest, ProvesDisconnectedComponents) {
  GraphStore g = MakeGraph({{"a", "e", "b"}, {"c", "e", "d"}});
  const DistanceSketch sketch = DistanceSketch::Build(g);
  EXPECT_EQ(sketch.LowerBound(Node(g, "a"), Node(g, "c")),
            DistanceSketch::kUnreachable);
  EXPECT_NE(sketch.LowerBound(Node(g, "a"), Node(g, "b")),
            DistanceSketch::kUnreachable);
}

// --- IndexManager ------------------------------------------------------------

TEST(IndexManagerTest, LazilyBuildsAndCachesEntries) {
  GraphStore g = MakeGraph({{"a", "e", "b"}, {"b", "e", "c"}});
  IndexManager manager(&g);
  const LabelReachability* first =
      manager.Reachability(Label(g, "e"), Direction::kOutgoing);
  ASSERT_NE(first, nullptr);
  EXPECT_TRUE(first->Reachable(Node(g, "a"), Node(g, "c")));
  // Second lookup serves the cached build (stable pointer).
  EXPECT_EQ(manager.Reachability(Label(g, "e"), Direction::kOutgoing), first);
  ASSERT_NE(manager.Sketch(), nullptr);
  EXPECT_FALSE(manager.Sketch()->empty());
}

TEST(IndexManagerTest, PreloadedEntriesAreServedWithoutBuilding) {
  GraphStore g = MakeGraph({{"a", "e", "b"}});
  ReachabilityIndex prebuilt = ReachabilityIndex::BuildAll(g);
  const IndexManager manager(&g, std::move(prebuilt),
                             DistanceSketch::Build(g));
  const LabelReachability* reach =
      manager.Reachability(Label(g, "e"), Direction::kOutgoing);
  ASSERT_NE(reach, nullptr);
  EXPECT_TRUE(reach->Reachable(Node(g, "a"), Node(g, "b")));
  ASSERT_NE(manager.Sketch(), nullptr);
}

// --- IndexProbeStream --------------------------------------------------------

std::vector<NodeId> DrainProbe(const LabelReachability* reach,
                               const IndexProbePlan& plan,
                               ProbeReachSet set) {
  IndexProbeStream stream(reach, plan, std::move(set));
  std::vector<NodeId> out;
  Answer a;
  while (stream.Next(&a)) {
    EXPECT_EQ(a.v, plan.source);
    EXPECT_EQ(a.distance, 0);
    out.push_back(a.n);
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(IndexProbeStreamTest, EnumeratesStarClosure) {
  GraphStore g = MakeGraph({{"a", "e", "b"},
                            {"b", "e", "c"},
                            {"c", "e", "a"},
                            {"c", "e", "d"},
                            {"z", "other", "z2"}});
  std::optional<LabelReachability> reach =
      ReachabilityIndex::BuildFor(g, Label(g, "e"), Direction::kOutgoing);
  ASSERT_TRUE(reach.has_value());

  IndexProbePlan plan;
  plan.label = Label(g, "e");
  plan.source = Node(g, "a");
  std::optional<ProbeReachSet> set = ComputeProbeReachSet(g, &*reach, plan);
  ASSERT_TRUE(set.has_value());
  // a* from a: the whole {a,b,c} cycle plus d.
  const std::vector<NodeId> expect = [&] {
    std::vector<NodeId> v{Node(g, "a"), Node(g, "b"), Node(g, "c"),
                          Node(g, "d")};
    std::sort(v.begin(), v.end());
    return v;
  }();
  EXPECT_EQ(DrainProbe(&*reach, plan, *set), expect);
  EXPECT_EQ(set->Count(&*reach), expect.size());

  // a+ (min_hops = 1) from d: no outgoing edges, so empty.
  IndexProbePlan plus = plan;
  plus.source = Node(g, "d");
  plus.min_hops = 1;
  std::optional<ProbeReachSet> plus_set =
      ComputeProbeReachSet(g, &*reach, plus);
  ASSERT_TRUE(plus_set.has_value());
  EXPECT_TRUE(DrainProbe(&*reach, plus, *plus_set).empty());

  // Constant-target probe: containment only.
  IndexProbePlan constant = plan;
  constant.target_is_constant = true;
  constant.target = Node(g, "d");
  std::optional<ProbeReachSet> c_set =
      ComputeProbeReachSet(g, &*reach, constant);
  ASSERT_TRUE(c_set.has_value());
  EXPECT_EQ(DrainProbe(&*reach, constant, *c_set),
            std::vector<NodeId>{Node(g, "d")});
  constant.target = Node(g, "z");
  std::optional<ProbeReachSet> miss_set =
      ComputeProbeReachSet(g, &*reach, constant);
  ASSERT_TRUE(miss_set.has_value());
  EXPECT_TRUE(DrainProbe(&*reach, constant, *miss_set).empty());
}

// --- Engine substitution -----------------------------------------------------

TEST(IndexEngineTest, ExplainShowsIndexProbeAndAnswersMatch) {
  GraphStore g = MakeGraph({{"a", "e", "b"},
                            {"b", "e", "c"},
                            {"c", "e", "a"},
                            {"c", "e", "d"},
                            {"d", "f", "a"}});
  IndexManager indexes(&g);
  QueryEngine engine(&g, nullptr, &indexes);

  const Query query = Qy("(?Y) <- (a, e*, ?Y)");
  QueryEngineOptions with_index;
  Result<std::string> explain = engine.ExplainQuery(query, with_index);
  ASSERT_TRUE(explain.ok());
  EXPECT_NE(explain->find("IndexProbe"), std::string::npos) << *explain;

  QueryEngineOptions no_index;
  no_index.use_reachability_index = false;
  Result<std::string> plain = engine.ExplainQuery(query, no_index);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->find("IndexProbe"), std::string::npos) << *plain;

  Result<std::vector<QueryAnswer>> indexed =
      engine.ExecuteTopK(query, 0, with_index);
  Result<std::vector<QueryAnswer>> walked =
      engine.ExecuteTopK(query, 0, no_index);
  ASSERT_TRUE(indexed.ok());
  ASSERT_TRUE(walked.ok());
  EXPECT_EQ(CanonAnswers(*indexed), CanonAnswers(*walked));
  EXPECT_EQ(indexed->size(), 4u);  // a, b, c, d
}

TEST(IndexEngineTest, AbsentLabelAndMissingConstantStayCorrect) {
  GraphStore g = MakeGraph({{"a", "e", "b"}});
  IndexManager indexes(&g);
  QueryEngine engine(&g, nullptr, &indexes);
  // Label absent from the dictionary: zzz* still matches the empty path.
  Result<std::vector<QueryAnswer>> star =
      engine.ExecuteTopK(Qy("(?Y) <- (a, zzz*, ?Y)"), 0);
  ASSERT_TRUE(star.ok());
  ASSERT_EQ(star->size(), 1u);
  EXPECT_EQ((*star)[0].bindings[0], Node(g, "a"));
  // zzz+ needs one real edge: empty.
  Result<std::vector<QueryAnswer>> plus =
      engine.ExecuteTopK(Qy("(?Y) <- (a, zzz+, ?Y)"), 0);
  ASSERT_TRUE(plus.ok());
  EXPECT_TRUE(plus->empty());
  // Unresolvable constant source: empty, not an error.
  Result<std::vector<QueryAnswer>> ghost =
      engine.ExecuteTopK(Qy("(?Y) <- (ghost, e*, ?Y)"), 0);
  ASSERT_TRUE(ghost.ok());
  EXPECT_TRUE(ghost->empty());
}

// --- Snapshot persistence ----------------------------------------------------

GraphStore IndexFixtureGraph() {
  return MakeGraph({{"a", "e", "b"},
                    {"b", "e", "c"},
                    {"c", "e", "a"},
                    {"c", "e", "d"},
                    {"d", "f", "a"},
                    {"x", "f", "y"}});
}

TEST(SnapshotIndexTest, RoundTripPreloadsIndexesAndAnswersMatch) {
  GraphStore g = IndexFixtureGraph();
  const ReachabilityIndex reach = ReachabilityIndex::BuildAll(g);
  const DistanceSketch sketch = DistanceSketch::Build(g);
  const std::string path = TempPath("with_index.snap");
  ASSERT_TRUE(WriteSnapshot(g, nullptr, &reach, &sketch, path).ok());
  ASSERT_TRUE(SnapshotReader::Verify(path).ok());

  Result<SnapshotInfo> info = SnapshotReader::Inspect(path);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->format_version, kSnapshotFormatVersion);
  EXPECT_TRUE(info->has_reach_index);
  EXPECT_TRUE(info->has_distance_sketch);

  Result<std::shared_ptr<const Dataset>> dataset = SnapshotReader::Open(path);
  ASSERT_TRUE(dataset.ok());
  ASSERT_NE((*dataset)->indexes(), nullptr);
  const LabelReachability* e = (*dataset)->indexes()->Reachability(
      Label((*dataset)->graph(), "e"), Direction::kOutgoing);
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->Reachable(Node((*dataset)->graph(), "a"),
                           Node((*dataset)->graph(), "d")));
  ASSERT_NE((*dataset)->indexes()->Sketch(), nullptr);

  // Closure query answers identical between the in-memory build and the
  // snapshot-preloaded index.
  IndexManager mem_indexes(&g);
  QueryEngine mem_engine(&g, nullptr, &mem_indexes);
  QueryEngine snap_engine(&(*dataset)->graph(), nullptr,
                          (*dataset)->indexes());
  const Query query = Qy("(?Y) <- (a, e+, ?Y)");
  Result<std::vector<QueryAnswer>> mem = mem_engine.ExecuteTopK(query, 0);
  Result<std::vector<QueryAnswer>> snap = snap_engine.ExecuteTopK(query, 0);
  ASSERT_TRUE(mem.ok());
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(CanonAnswers(*mem), CanonAnswers(*snap));
}

/// Rewrites the header's format_version and recomputes the header checksum,
/// emulating a file written by the previous (v1) writer.
void PatchVersion(const std::string& path, uint32_t version) {
  std::fstream file(path,
                    std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(file.good());
  SnapshotHeader header;
  file.read(reinterpret_cast<char*>(&header), sizeof(header));
  ASSERT_TRUE(file.good());
  header.format_version = version;
  header.header_checksum = 0;
  header.header_checksum = Fnv1a64(&header, sizeof(header));
  file.seekp(0);
  file.write(reinterpret_cast<const char*>(&header), sizeof(header));
  ASSERT_TRUE(file.good());
}

TEST(SnapshotIndexTest, VersionOneSnapshotStillOpens) {
  GraphStore g = IndexFixtureGraph();
  const std::string path = TempPath("v1_compat.snap");
  // Index-free write, then stamp the header back to version 1: exactly the
  // byte layout the v1 writer produced.
  ASSERT_TRUE(WriteSnapshot(g, nullptr, path).ok());
  PatchVersion(path, 1);

  ASSERT_TRUE(SnapshotReader::Verify(path).ok());
  Result<std::shared_ptr<const Dataset>> dataset = SnapshotReader::Open(path);
  ASSERT_TRUE(dataset.ok());
  Result<SnapshotInfo> info = SnapshotReader::Inspect(path);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->format_version, 1u);
  EXPECT_FALSE(info->has_reach_index);
  // No persisted index, but the dataset still has a manager that builds on
  // demand — old snapshots lose nothing but the preload.
  ASSERT_NE((*dataset)->indexes(), nullptr);
  const LabelReachability* e = (*dataset)->indexes()->Reachability(
      Label((*dataset)->graph(), "e"), Direction::kOutgoing);
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->Reachable(Node((*dataset)->graph(), "a"),
                           Node((*dataset)->graph(), "d")));
}

TEST(SnapshotIndexTest, VersionOneWithIndexFlagsIsCorrupt) {
  GraphStore g = IndexFixtureGraph();
  const ReachabilityIndex reach = ReachabilityIndex::BuildAll(g);
  const std::string path = TempPath("v1_bad_flags.snap");
  ASSERT_TRUE(WriteSnapshot(g, nullptr, &reach, nullptr, path).ok());
  PatchVersion(path, 1);
  EXPECT_FALSE(SnapshotReader::Open(path).ok());
  EXPECT_FALSE(SnapshotReader::Verify(path).ok());
}

TEST(SnapshotIndexTest, CorruptReachSectionFailsVerify) {
  GraphStore g = IndexFixtureGraph();
  const ReachabilityIndex reach = ReachabilityIndex::BuildAll(g);
  const DistanceSketch sketch = DistanceSketch::Build(g);
  const std::string path = TempPath("corrupt_reach.snap");
  ASSERT_TRUE(WriteSnapshot(g, nullptr, &reach, &sketch, path).ok());

  // Locate the first reach section via the TOC and flip a payload byte.
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(file.good());
  SnapshotHeader header;
  file.read(reinterpret_cast<char*>(&header), sizeof(header));
  ASSERT_TRUE(file.good());
  file.seekg(static_cast<std::streamoff>(header.toc_offset));
  uint64_t target_offset = 0;
  for (uint32_t i = 0; i < header.section_count; ++i) {
    SectionEntry entry;
    file.read(reinterpret_cast<char*>(&entry), sizeof(entry));
    ASSERT_TRUE(file.good());
    if (entry.kind == static_cast<uint32_t>(SectionKind::kReachIntervals) &&
        entry.count > 0) {
      target_offset = entry.offset;
      break;
    }
  }
  ASSERT_GT(target_offset, 0u);
  file.seekg(static_cast<std::streamoff>(target_offset));
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  file.seekp(static_cast<std::streamoff>(target_offset));
  file.write(&byte, 1);
  file.flush();
  ASSERT_TRUE(file.good());

  EXPECT_FALSE(SnapshotReader::Verify(path).ok());
}

}  // namespace
}  // namespace omega
