#include "rpq/query_parser.h"

#include <gtest/gtest.h>

namespace omega {
namespace {

TEST(QueryParserTest, SingleConjunct) {
  Result<Query> q = ParseQuery("(?X) <- (UK, isLocatedIn-.gradFrom, ?X)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->head, (std::vector<std::string>{"X"}));
  ASSERT_EQ(q->conjuncts.size(), 1u);
  const Conjunct& c = q->conjuncts[0];
  EXPECT_EQ(c.mode, ConjunctMode::kExact);
  EXPECT_FALSE(c.source.is_variable);
  EXPECT_EQ(c.source.name, "UK");
  EXPECT_TRUE(c.target.is_variable);
  EXPECT_EQ(c.target.name, "X");
  EXPECT_EQ(ToString(*c.regex), "isLocatedIn-.gradFrom");
}

TEST(QueryParserTest, ApproxAndRelaxPrefixes) {
  Result<Query> q = ParseQuery(
      "(?X, ?Y) <- APPROX (UK, a.b, ?X), RELAX (?X, c+, ?Y)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->conjuncts.size(), 2u);
  EXPECT_EQ(q->conjuncts[0].mode, ConjunctMode::kApprox);
  EXPECT_EQ(q->conjuncts[1].mode, ConjunctMode::kRelax);
}

TEST(QueryParserTest, ConstantsWithSpaces) {
  Result<Query> q = ParseQuery(
      "(?X) <- (Mathematical and Computer Sciences, type.prereq+, ?X)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->conjuncts[0].source.name,
            "Mathematical and Computer Sciences");
}

TEST(QueryParserTest, ConstantTarget) {
  Result<Query> q = ParseQuery("(?X) <- (?X, next+, Alumni 4 Episode 1)");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->conjuncts[0].source.is_variable);
  EXPECT_FALSE(q->conjuncts[0].target.is_variable);
  EXPECT_EQ(q->conjuncts[0].target.name, "Alumni 4 Episode 1");
}

TEST(QueryParserTest, SharedVariableAcrossConjuncts) {
  Result<Query> q = ParseQuery("(?Z) <- (?X, a, ?Y), (?Y, b, ?Z)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->BodyVariables(),
            (std::vector<std::string>{"X", "Y", "Z"}));
}

TEST(QueryParserTest, RoundTripToString) {
  const std::string text =
      "(?X, ?Y) <- APPROX (UK, (a.b)|c-, ?X), (?X, type-, ?Y)";
  Result<Query> q = ParseQuery(text);
  ASSERT_TRUE(q.ok());
  Result<Query> again = ParseQuery(q->ToString());
  ASSERT_TRUE(again.ok()) << q->ToString();
  EXPECT_EQ(q->ToString(), again->ToString());
}

TEST(QueryParserTest, SameVariableBothEndpoints) {
  Result<Query> q = ParseQuery("(?X) <- (?X, next+, ?X)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->BodyVariables(), (std::vector<std::string>{"X"}));
}

TEST(QueryParserTest, ErrorMissingArrow) {
  EXPECT_FALSE(ParseQuery("(?X) (UK, a, ?X)").ok());
}

TEST(QueryParserTest, ErrorHeadNotVariable) {
  EXPECT_FALSE(ParseQuery("(X) <- (UK, a, ?X)").ok());
}

TEST(QueryParserTest, ErrorHeadVarNotInBody) {
  Result<Query> q = ParseQuery("(?Z) <- (UK, a, ?X)");
  ASSERT_FALSE(q.ok());
  EXPECT_TRUE(q.status().IsInvalidArgument());
}

TEST(QueryParserTest, ErrorBadConjunctArity) {
  EXPECT_FALSE(ParseQuery("(?X) <- (UK, a)").ok());
  EXPECT_FALSE(ParseQuery("(?X) <- (UK, a, b, ?X)").ok());
}

TEST(QueryParserTest, ErrorUnparenthesisedConjunct) {
  EXPECT_FALSE(ParseQuery("(?X) <- UK, a, ?X").ok());
}

TEST(QueryParserTest, ErrorBadRegexInsideConjunct) {
  EXPECT_FALSE(ParseQuery("(?X) <- (UK, a..b, ?X)").ok());
}

TEST(QueryParserTest, ErrorEmptyVariableName) {
  EXPECT_FALSE(ParseQuery("(?) <- (UK, a, ?X)").ok());
  EXPECT_FALSE(ParseQuery("(?X) <- (UK, a, ?)").ok());
}

TEST(QueryParserTest, ValidateRejectsEmptyPieces) {
  Query q;
  EXPECT_FALSE(ValidateQuery(q).ok());
  q.head.push_back("X");
  EXPECT_FALSE(ValidateQuery(q).ok());
}

TEST(CanonicalKeyTest, RenamesVariablesInFirstAppearanceOrder) {
  Result<Query> q = ParseQuery(
      "(?B) <- (?A, knows, ?B), APPROX (?B, likes.owns-, ?C)");
  ASSERT_TRUE(q.ok());
  // Head first (?B -> v0), then body first-use (?A -> v1, ?C -> v2).
  EXPECT_EQ(q->CanonicalKey(),
            "(?v0) <- (?v1, knows, ?v0), APPROX (?v0, likes.owns-, ?v2)");
}

TEST(CanonicalKeyTest, AlphaEquivalentQueriesShareAKey) {
  Result<Query> a = ParseQuery("(?X, ?Y) <- RELAX (?X, worksAt, ?Y)");
  Result<Query> b = ParseQuery("(?Foo, ?Bar) <- RELAX (?Foo, worksAt, ?Bar)");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->CanonicalKey(), b->CanonicalKey());
  EXPECT_NE(a->ToString(), b->ToString());
}

TEST(CanonicalKeyTest, DistinguishesWhatMatters) {
  auto key = [](const std::string& text) {
    Result<Query> q = ParseQuery(text);
    EXPECT_TRUE(q.ok()) << text;
    return q->CanonicalKey();
  };
  const std::string base = key("(?X) <- (?X, knows, ?Y)");
  EXPECT_NE(key("(?X) <- APPROX (?X, knows, ?Y)"), base);   // mode
  EXPECT_NE(key("(?X) <- (?X, likes, ?Y)"), base);          // regex
  EXPECT_NE(key("(?X) <- (?X, knows, UK)"), base);          // constant
  EXPECT_NE(key("(?X, ?Y) <- (?X, knows, ?Y)"), base);      // head width
  EXPECT_NE(key("(?Y) <- (?X, knows, ?Y)"), base);          // projection
  // Constants are preserved verbatim, not renamed.
  EXPECT_EQ(key("(?Z) <- (UK, locatedIn-, ?Z)"),
            "(?v0) <- (UK, locatedIn-, ?v0)");
}

}  // namespace
}  // namespace omega
