#include "automata/nfa.h"

#include <gtest/gtest.h>

#include <functional>
#include <set>

#include "automata/epsilon_removal.h"
#include "automata/reference_matcher.h"
#include "automata/thompson.h"
#include "common/rng.h"
#include "test_util.h"

namespace omega {
namespace {

using testing::Rx;

LabelDictionary MakeLabels(const std::vector<std::string>& names) {
  LabelDictionary dict;
  for (const auto& n : names) dict.Intern(n);
  return dict;
}

/// All step-sequences of length <= max_len accepted by `nfa` at zero cost
/// (enumerated by brute-force search over the transition graph).
std::set<std::vector<LabelStep>> ZeroCostLanguage(
    const Nfa& nfa, const LabelDictionary& dict, size_t max_len) {
  std::set<std::vector<LabelStep>> lang;
  std::vector<LabelStep> current;
  std::function<void(StateId)> walk = [&](StateId s) {
    if (nfa.IsFinal(s) && nfa.FinalWeight(s) == 0) lang.insert(current);
    if (current.size() >= max_len) return;
    for (const NfaTransition& t : nfa.Out(s)) {
      if (t.cost != 0) continue;
      switch (t.kind) {
        case TransitionKind::kEpsilon:
          walk(t.to);  // zero-cost ε: language-equivalent hop
          break;
        case TransitionKind::kLabel:
          if (t.label == kInvalidLabel) break;
          current.push_back({std::string(dict.Name(t.label)), t.dir});
          walk(t.to);
          current.pop_back();
          break;
        case TransitionKind::kAnyLabel:
          for (LabelId l = 0; l < dict.size(); ++l) {
            current.push_back({std::string(dict.Name(l)), t.dir});
            walk(t.to);
            current.pop_back();
          }
          break;
        default:
          break;
      }
    }
  };
  walk(nfa.initial());
  return lang;
}

TEST(ThompsonTest, SingleLabel) {
  LabelDictionary dict = MakeLabels({"a"});
  Nfa nfa = BuildThompsonNfa(*Rx("a"), dict);
  EXPECT_TRUE(nfa.HasEpsilonTransitions() == false);  // single transition
  EXPECT_EQ(nfa.NumTransitions(), 1u);
}

TEST(ThompsonTest, UnknownLabelBecomesInvalid) {
  LabelDictionary dict = MakeLabels({});
  Nfa nfa = BuildThompsonNfa(*Rx("zzz"), dict);
  bool found = false;
  for (StateId s = 0; s < nfa.NumStates(); ++s) {
    for (const NfaTransition& t : nfa.Out(s)) {
      if (t.kind == TransitionKind::kLabel) {
        EXPECT_EQ(t.label, kInvalidLabel);
        found = true;
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(EpsilonRemovalTest, RemovesAllEpsilons) {
  LabelDictionary dict = MakeLabels({"a", "b"});
  Nfa nfa = BuildThompsonNfa(*Rx("(a|b)*.a"), dict);
  EXPECT_TRUE(nfa.HasEpsilonTransitions());
  Nfa clean = RemoveEpsilons(nfa);
  EXPECT_FALSE(clean.HasEpsilonTransitions());
}

TEST(EpsilonRemovalTest, EpsilonRegexAcceptsEmptyOnly) {
  LabelDictionary dict = MakeLabels({"a"});
  Nfa clean = RemoveEpsilons(BuildThompsonNfa(*Rx("()"), dict));
  EXPECT_TRUE(clean.IsFinal(clean.initial()));
  EXPECT_EQ(clean.FinalWeight(clean.initial()), 0);
  EXPECT_EQ(ZeroCostLanguage(clean, dict, 2).size(), 1u);  // just ε
}

TEST(EpsilonRemovalTest, CostlyEpsilonBecomesFinalWeight) {
  // s0 --a--> s1 --ε/3--> s2(final): after removal s1 is final with w=3.
  Nfa nfa;
  const StateId s0 = nfa.AddState();
  const StateId s1 = nfa.AddState();
  const StateId s2 = nfa.AddState();
  nfa.SetInitial(s0);
  nfa.AddLabel(s0, s1, 1, Direction::kOutgoing);
  nfa.AddEpsilon(s1, s2, 3);
  nfa.MakeFinal(s2, 0);
  Nfa clean = RemoveEpsilons(nfa);
  bool found_weighted_final = false;
  for (StateId s = 0; s < clean.NumStates(); ++s) {
    if (clean.IsFinal(s) && clean.FinalWeight(s) == 3) {
      found_weighted_final = true;
    }
  }
  EXPECT_TRUE(found_weighted_final);
}

TEST(EpsilonRemovalTest, ChainedCostlyEpsilonsTakeCheapestPath) {
  // Two ε-paths to the final state: 2+2 and 3; the final weight must be 3...
  // and with a direct 1-cost ε, 1.
  Nfa nfa;
  const StateId s0 = nfa.AddState();
  const StateId mid = nfa.AddState();
  const StateId fin = nfa.AddState();
  nfa.SetInitial(s0);
  nfa.AddEpsilon(s0, mid, 2);
  nfa.AddEpsilon(mid, fin, 2);
  nfa.AddEpsilon(s0, fin, 3);
  nfa.MakeFinal(fin, 0);
  Nfa clean = RemoveEpsilons(nfa);
  EXPECT_TRUE(clean.IsFinal(clean.initial()));
  EXPECT_EQ(clean.FinalWeight(clean.initial()), 3);
}

TEST(EpsilonRemovalTest, PrunesDeadStates) {
  LabelDictionary dict = MakeLabels({"a", "b"});
  // b-branch of the alternation is reachable but (a|b) is fine; build an NFA
  // with an extra unreachable state manually.
  Nfa nfa = BuildThompsonNfa(*Rx("a"), dict);
  const StateId dead = nfa.AddState();
  nfa.AddLabel(dead, dead, 0, Direction::kOutgoing);
  Nfa clean = RemoveEpsilons(nfa);
  EXPECT_LT(clean.NumStates(), nfa.NumStates());
}

TEST(NfaTest, MinPositiveCost) {
  Nfa nfa;
  const StateId s0 = nfa.AddState();
  const StateId s1 = nfa.AddState();
  nfa.SetInitial(s0);
  nfa.AddLabel(s0, s1, 0, Direction::kOutgoing, 0);
  EXPECT_EQ(nfa.MinPositiveCost(), kInfiniteCost);
  nfa.AddAnyBothDirs(s0, s0, 5);
  nfa.AddEpsilon(s0, s1, 2);
  EXPECT_EQ(nfa.MinPositiveCost(), 2);
  nfa.MakeFinal(s1, 1);
  EXPECT_EQ(nfa.MinPositiveCost(), 1);
}

TEST(NfaTest, SortGroupsSameNeighborTransitions) {
  Nfa nfa;
  const StateId s0 = nfa.AddState();
  const StateId s1 = nfa.AddState();
  const StateId s2 = nfa.AddState();
  nfa.SetInitial(s0);
  nfa.AddLabel(s0, s1, 3, Direction::kOutgoing, 1);
  nfa.AddAnyBothDirs(s0, s2, 1);
  nfa.AddLabel(s0, s2, 3, Direction::kOutgoing, 0);
  nfa.AddLabel(s0, s1, 2, Direction::kIncoming, 0);
  nfa.SortTransitions();
  auto out = nfa.Out(s0);
  ASSERT_EQ(out.size(), 4u);
  // The two label-3 outgoing transitions must be adjacent, cheapest first.
  bool adjacent = false;
  for (size_t i = 0; i + 1 < out.size(); ++i) {
    if (out[i].SameNeighborGroup(out[i + 1])) {
      adjacent = true;
      EXPECT_LE(out[i].cost, out[i + 1].cost);
    }
  }
  EXPECT_TRUE(adjacent);
}

TEST(NfaTest, DebugStringMentionsStates) {
  LabelDictionary dict = MakeLabels({"a"});
  Nfa nfa = BuildThompsonNfa(*Rx("a+"), dict);
  const std::string dump = nfa.DebugString(&dict);
  EXPECT_NE(dump.find("initial"), std::string::npos);
  EXPECT_NE(dump.find("final"), std::string::npos);
  EXPECT_NE(dump.find("--a"), std::string::npos);
}

class NfaLanguagePropertyTest : public ::testing::TestWithParam<uint64_t> {};

// The central automaton property: after Thompson + ε-removal the zero-cost
// language up to length 4 equals the reference AST matcher's verdicts on
// every candidate path (exhaustively enumerated over a 2-letter alphabet
// with both directions).
TEST_P(NfaLanguagePropertyTest, ThompsonPlusEpsRemovalMatchesAstSemantics) {
  Rng rng(GetParam());
  const std::vector<std::string> labels = {"a", "b"};
  LabelDictionary dict = MakeLabels(labels);

  // All candidate steps over the alphabet (type excluded for clarity).
  std::vector<LabelStep> alphabet_steps;
  for (const auto& l : labels) {
    alphabet_steps.push_back({l, Direction::kOutgoing});
    alphabet_steps.push_back({l, Direction::kIncoming});
  }

  for (int round = 0; round < 12; ++round) {
    RegexPtr regex = testing::RandomRegex(&rng, labels, 2);
    Nfa nfa = RemoveEpsilons(BuildThompsonNfa(*regex, dict));
    ASSERT_FALSE(nfa.HasEpsilonTransitions());
    const auto lang = ZeroCostLanguage(nfa, dict, 3);

    // Exhaustive check over all paths of length <= 3.
    std::function<void(std::vector<LabelStep>&)> check =
        [&](std::vector<LabelStep>& path) {
          const bool expected = RegexMatchesPath(*regex, path);
          const bool got = lang.count(path) > 0;
          EXPECT_EQ(got, expected)
              << ToString(*regex) << " path len " << path.size();
          if (path.size() >= 3) return;
          for (const LabelStep& step : alphabet_steps) {
            path.push_back(step);
            check(path);
            path.pop_back();
          }
        };
    std::vector<LabelStep> path;
    check(path);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NfaLanguagePropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace omega
