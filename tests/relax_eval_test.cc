// End-to-end RELAX scenarios: Example 3, class-constant relaxation (the
// Q10 pattern), entailment-aware matching, and the dom/range rule.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "eval/conjunct_evaluator.h"
#include "test_util.h"

namespace omega {
namespace {

using testing::Cj;
using testing::DrainUpTo;
using testing::MakeGraph;

struct Fixture {
  GraphStore graph;
  Ontology ontology;
  std::unique_ptr<BoundOntology> bound;
};

std::vector<Answer> RunConjunct(const Fixture& fx, const std::string& conjunct,
                        Cost max_distance = kInfiniteCost,
                        EvaluatorOptions options = {}) {
  Result<PreparedConjunct> prepared =
      PrepareConjunct(Cj(conjunct), fx.graph, fx.bound.get(), options);
  EXPECT_TRUE(prepared.ok()) << prepared.status().ToString();
  ConjunctEvaluator evaluator(&fx.graph, fx.bound.get(), &*prepared, options);
  return DrainUpTo(&evaluator, max_distance);
}

std::set<std::string> NamesAt(const Fixture& fx,
                              const std::vector<Answer>& answers, Cost d) {
  std::set<std::string> out;
  for (const Answer& a : answers) {
    if (a.distance == d) out.insert(std::string(fx.graph.NodeLabel(a.n)));
  }
  return out;
}

/// Example 3's universe: gradFrom and happenedIn share the super-property
/// relationLocatedByObject; events and universities are located in the UK.
Fixture Example3Fixture() {
  Fixture fx;
  OntologyBuilder ob;
  EXPECT_TRUE(ob.AddSubproperty("gradFrom", "relationLocatedByObject").ok());
  EXPECT_TRUE(ob.AddSubproperty("happenedIn", "relationLocatedByObject").ok());
  EXPECT_TRUE(
      ob.AddSubproperty("participatedIn", "relationLocatedByObject").ok());
  Result<Ontology> o = std::move(ob).Finalize();
  EXPECT_TRUE(o.ok());
  fx.ontology = std::move(o).value();
  fx.graph = MakeGraph({
      {"oxford", "locatedIn", "UK"},
      {"battle_of_hastings", "locatedIn", "UK"},
      {"alice", "gradFrom", "oxford"},
      {"battle_of_hastings", "happenedIn", "hastings"},
      {"harold", "participatedIn", "normandy_landing"},
  });
  fx.bound = std::make_unique<BoundOntology>(&fx.ontology, &fx.graph);
  return fx;
}

TEST(RelaxEvalTest, Example1ExactReturnsNothing) {
  // The paper's Example 1: "this query returns no results since it requires
  // that there is some entity y, located in the UK, which has graduated" —
  // things located in the UK have no outgoing gradFrom edges.
  Fixture fx = Example3Fixture();
  auto answers = RunConjunct(fx, "(UK, locatedIn-.gradFrom, ?X)");
  EXPECT_TRUE(answers.empty());
}

TEST(RelaxEvalTest, Example3RelaxMatchesSiblingProperties) {
  Fixture fx = Example3Fixture();
  auto answers = RunConjunct(fx, "RELAX (UK, locatedIn-.gradFrom, ?X)");
  // Relaxing gradFrom ~> relationLocatedByObject (β=1) lets the battle's
  // happenedIn edge match: hastings appears at distance 1 where the exact
  // query had nothing.
  EXPECT_EQ(NamesAt(fx, answers, 0), (std::set<std::string>{}));
  EXPECT_EQ(NamesAt(fx, answers, 1), (std::set<std::string>{"hastings"}));
}

TEST(RelaxEvalTest, RelaxNeverLosesExactAnswers) {
  Fixture fx = Example3Fixture();
  auto exact = RunConjunct(fx, "(alice, gradFrom, ?X)");
  ASSERT_EQ(exact.size(), 1u);  // oxford at distance 0
  auto relaxed = RunConjunct(fx, "RELAX (alice, gradFrom, ?X)");
  for (const Answer& e : exact) {
    bool found = false;
    for (const Answer& r : relaxed) {
      if (r.v == e.v && r.n == e.n && r.distance == e.distance) found = true;
    }
    EXPECT_TRUE(found);
  }
}

/// The Q10 pattern: a deep class constant relaxes to ancestors, matching
/// instances of sibling classes at increasing cost.
Fixture ClassRelaxFixture() {
  Fixture fx;
  OntologyBuilder ob;
  EXPECT_TRUE(ob.AddSubclass("Software Professionals", "Professionals").ok());
  EXPECT_TRUE(ob.AddSubclass("Librarians", "Software Professionals").ok());
  EXPECT_TRUE(ob.AddSubclass("Web Developers", "Software Professionals").ok());
  EXPECT_TRUE(ob.AddSubclass("Doctors", "Professionals").ok());
  Result<Ontology> o = std::move(ob).Finalize();
  EXPECT_TRUE(o.ok());
  fx.ontology = std::move(o).value();

  GraphBuilder gb;
  auto type_edge = [&gb](const std::string& inst, const std::string& cls) {
    Status s =
        gb.AddTypeEdge(gb.GetOrAddNode(inst), gb.GetOrAddNode(cls));
    EXPECT_TRUE(s.ok());
  };
  type_edge("lib1", "Librarians");
  type_edge("web1", "Web Developers");
  type_edge("web2", "Web Developers");
  type_edge("doc1", "Doctors");
  gb.GetOrAddNode("Professionals");
  gb.GetOrAddNode("Software Professionals");
  fx.graph = std::move(gb).Finalize();
  fx.bound = std::make_unique<BoundOntology>(&fx.ontology, &fx.graph);
  return fx;
}

TEST(RelaxEvalTest, ClassConstantExactMatchesDirectInstancesOnly) {
  Fixture fx = ClassRelaxFixture();
  auto answers = RunConjunct(fx, "(Librarians, type-, ?X)");
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(fx.graph.NodeLabel(answers[0].n), "lib1");
}

TEST(RelaxEvalTest, ClassConstantRelaxesThroughAncestors) {
  Fixture fx = ClassRelaxFixture();
  auto answers = RunConjunct(fx, "RELAX (Librarians, type-, ?X)");
  // d=0: lib1. d=1 (parent Software Professionals, entailment over its
  // down-set): web1, web2 — and lib1 already answered at 0, not repeated.
  // d=2 (grandparent Professionals): doc1.
  EXPECT_EQ(NamesAt(fx, answers, 0), (std::set<std::string>{"lib1"}));
  EXPECT_EQ(NamesAt(fx, answers, 1),
            (std::set<std::string>{"web1", "web2"}));
  EXPECT_EQ(NamesAt(fx, answers, 2), (std::set<std::string>{"doc1"}));
  // Each node answers exactly once, at its cheapest distance.
  std::set<NodeId> seen;
  for (const Answer& a : answers) EXPECT_TRUE(seen.insert(a.n).second);
}

TEST(RelaxEvalTest, BetaScalesAncestorSeedDistances) {
  Fixture fx = ClassRelaxFixture();
  EvaluatorOptions options;
  options.relax.beta = 5;
  auto answers = RunConjunct(fx, "RELAX (Librarians, type-, ?X)", kInfiniteCost,
                     options);
  EXPECT_EQ(NamesAt(fx, answers, 5),
            (std::set<std::string>{"web1", "web2"}));
  EXPECT_EQ(NamesAt(fx, answers, 10), (std::set<std::string>{"doc1"}));
}

TEST(RelaxEvalTest, EntailedTypeForwardReturnsAncestorClasses) {
  Fixture fx = ClassRelaxFixture();
  auto answers = RunConjunct(fx, "RELAX (lib1, type, ?X)");
  // Stored: Librarians at 0. Entailment: the ancestor classes also hold
  // at no extra relaxation cost.
  auto at0 = NamesAt(fx, answers, 0);
  EXPECT_TRUE(at0.count("Librarians"));
  EXPECT_TRUE(at0.count("Software Professionals"));
  EXPECT_TRUE(at0.count("Professionals"));
}

TEST(RelaxEvalTest, ExactTypeForwardReturnsDirectClassOnly) {
  Fixture fx = ClassRelaxFixture();
  auto answers = RunConjunct(fx, "(lib1, type, ?X)");
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(fx.graph.NodeLabel(answers[0].n), "Librarians");
}

TEST(RelaxEvalTest, RelaxRequiresOntology) {
  GraphStore g = MakeGraph({{"a", "e", "b"}});
  Result<PreparedConjunct> prepared =
      PrepareConjunct(Cj("RELAX (a, e, ?X)"), g, nullptr, {});
  ASSERT_FALSE(prepared.ok());
  EXPECT_EQ(prepared.status().code(), StatusCode::kFailedPrecondition);
}

TEST(RelaxEvalTest, DomainRangeRuleReachesClassNode) {
  Fixture fx;
  OntologyBuilder ob;
  EXPECT_TRUE(ob.AddSubclass("Person", "Agent").ok());
  EXPECT_TRUE(ob.SetDomain("knows", "Person").ok());
  Result<Ontology> o = std::move(ob).Finalize();
  EXPECT_TRUE(o.ok());
  fx.ontology = std::move(o).value();
  GraphBuilder gb;
  const NodeId alice = gb.GetOrAddNode("alice");
  const NodeId person = gb.GetOrAddNode("Person");
  EXPECT_TRUE(
      gb.AddEdge(alice, *gb.InternLabel("knows"), gb.GetOrAddNode("bob")).ok());
  EXPECT_TRUE(gb.AddTypeEdge(alice, person).ok());
  fx.graph = std::move(gb).Finalize();
  fx.bound = std::make_unique<BoundOntology>(&fx.ontology, &fx.graph);

  EvaluatorOptions options;
  options.relax.enable_domain_range = true;
  options.relax.gamma = 2;
  auto answers = RunConjunct(fx, "RELAX (alice, knows, ?X)", kInfiniteCost, options);
  // bob at 0 (exact); Person at 2 (the type edge replacing `knows`).
  EXPECT_EQ(NamesAt(fx, answers, 0), (std::set<std::string>{"bob"}));
  EXPECT_EQ(NamesAt(fx, answers, 2), (std::set<std::string>{"Person"}));
}

TEST(RelaxEvalTest, RelaxedQueryOnSuperpropertyLabelMatchesDescendants) {
  Fixture fx = Example3Fixture();
  // The user queries the super-property directly: exact finds nothing (no
  // stored relationLocatedByObject edges), RELAX matches all descendants
  // at distance 0 via entailment.
  auto exact = RunConjunct(fx, "(alice, relationLocatedByObject, ?X)");
  EXPECT_TRUE(exact.empty());
  auto relaxed = RunConjunct(fx, "RELAX (alice, relationLocatedByObject, ?X)");
  EXPECT_EQ(NamesAt(fx, relaxed, 0), (std::set<std::string>{"oxford"}));
}

}  // namespace
}  // namespace omega
