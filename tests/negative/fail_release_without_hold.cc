// MUST NOT COMPILE (-Werror=thread-safety): calls a RELEASE-annotated
// function without holding the capability, and calls a REQUIRES-annotated
// helper with no lock held. Catches the unbalanced manual Lock()/Unlock()
// pairs that scoped MutexLock exists to prevent.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Session {
 public:
  void FinishLocked() OMEGA_REQUIRES(mu_) { ++epoch_; }

  void Broken() {
    // BAD: releasing a mutex this thread never acquired.
    mu_.Unlock();
    // BAD: REQUIRES(mu_) callee invoked with no lock held.
    FinishLocked();
  }

 private:
  omega::Mutex mu_;
  long epoch_ OMEGA_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Session session;
  session.Broken();
  return 0;
}
