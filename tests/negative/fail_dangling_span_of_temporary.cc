// MUST NOT COMPILE (-Werror=dangling): takes a span from a *temporary*
// ConstArray. The array — and with it the owned heap buffer the span views —
// is destroyed at the end of the full-expression, leaving `s` dangling. This
// is the statement-local shape of the borrow seam's core rule ("whoever
// created the borrow must outlive it"), rejected because ConstArray::span()
// is OMEGA_LIFETIME_BOUND.
// expect-error: [-Werror,-Wdangling
#include <span>
#include <vector>

#include "common/const_array.h"

namespace {

int Sum() {
  // BAD: the ConstArray temporary dies at the semicolon; `s` views freed
  // heap memory.
  std::span<const int> s =
      omega::ConstArray<int>(std::vector<int>{1, 2, 3}).span();
  int total = 0;
  for (int v : s) total += v;
  return total;
}

}  // namespace

int main() { return Sum(); }
