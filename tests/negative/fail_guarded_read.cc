// MUST NOT COMPILE (-Werror=thread-safety): reads and writes a
// GUARDED_BY(mu_) member without holding mu_. This is the canonical
// unguarded-access bug the annotation layer exists to reject — exactly the
// shape of a stats-counter read racing accumulation in QueryService.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  void Increment() {
    // BAD: no MutexLock — TSA: "writing variable 'value_' requires holding
    // mutex 'mu_'".
    ++value_;
  }

  long Read() const {
    // BAD: unlocked read of a guarded member.
    return value_;
  }

 private:
  mutable omega::Mutex mu_;
  long value_ OMEGA_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return static_cast<int>(counter.Read());
}
