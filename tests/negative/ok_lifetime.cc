// MUST COMPILE cleanly under -Werror=dangling / -Werror=dangling-gsl /
// -Werror=return-stack-address: exercises the same annotated seam APIs as
// the fail_dangling_*.cc fixtures, but correctly — views taken from named
// objects that outlive them, escapes made safe with Clone() / deep-copying
// semantics. Its job is to prove the negative fixtures fail because of
// their seeded dangles, not because the annotations or flags reject the
// seam's legitimate usage patterns.
#include <numeric>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/const_array.h"
#include "snapshot/dataset.h"
#include "store/oid_set.h"
#include "store/string_table.h"
#include "store/types.h"

namespace {

int SumOwned() {
  // OK: the array outlives every view taken from it.
  const omega::ConstArray<int> arr(std::vector<int>{1, 2, 3});
  std::span<const int> s = arr.span();
  return std::accumulate(s.begin(), s.end(), 0);
}

omega::ConstArray<int> EscapeByClone(const omega::ConstArray<int>& borrowed) {
  // OK: Clone() always deep-copies into an owned array, which may outlive
  // whatever storage `borrowed` viewed.
  return borrowed.Clone();
}

size_t BorrowFromNamedStorage() {
  // OK: the storage is a named local that outlives the borrow.
  const std::vector<omega::NodeId> storage = {1, 2, 3};
  const omega::OidSet view = omega::OidSet::BorrowSortedUnique(storage);
  const omega::OidSet independent = view;  // copies deep: safe to keep
  return view.size() + independent.size();
}

std::string_view FirstLabel(const omega::StringTable& table
                                OMEGA_LIFETIME_BOUND) {
  // OK: the view is bounded by the caller's table, and the annotation says
  // so — callers passing a temporary get flagged, we do not.
  return table.empty() ? std::string_view() : table[0];
}

size_t ViewsOfLongLivedDataset(const omega::Dataset& dataset) {
  // OK: the span is consumed while the dataset (and its mapping) is alive.
  return dataset.graph()
      .SigmaNeighbors(0, omega::Direction::kOutgoing)
      .size();
}

}  // namespace

int main() {
  const std::vector<std::string> strings = {"alpha", "beta"};
  const omega::StringTable table = omega::StringTable::FromStrings(strings);
  const omega::ConstArray<int> arr(std::vector<int>{4, 5});
  const omega::Dataset dataset;
  return static_cast<int>(SumOwned() + BorrowFromNamedStorage() +
                          FirstLabel(table).size() +
                          EscapeByClone(arr).size() +
                          ViewsOfLongLivedDataset(dataset)) != 19;
}
