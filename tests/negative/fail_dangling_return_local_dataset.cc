// MUST NOT COMPILE (-Werror=return-stack-address): returns a borrowed view
// of a local Dataset. The span points into storage owned by `dataset`
// (which for a snapshot-backed store would be the mmap'd file, released
// right here at end of scope) — exactly the bug the epoch-pinning design in
// QueryService exists to prevent, caught at compile time because the whole
// accessor chain Dataset::graph() -> GraphStore::SigmaNeighbors() is
// OMEGA_LIFETIME_BOUND.
// expect-error: [-Werror,-Wreturn-stack-address
#include <span>

#include "snapshot/dataset.h"
#include "store/types.h"

namespace {

std::span<const omega::NodeId> EscapingView() {
  omega::Dataset dataset;
  // BAD: the returned span is bounded by `dataset`, which dies on return.
  return dataset.graph().SigmaNeighbors(0, omega::Direction::kOutgoing);
}

}  // namespace

int main() { return static_cast<int>(EscapingView().size()); }
