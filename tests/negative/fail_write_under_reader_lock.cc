// MUST NOT COMPILE (-Werror=thread-safety): writes a SharedMutex-guarded
// member while holding only the SHARED (reader) side. This is the epoch
// hot-swap hazard: QueryService admissions pin the current epoch under
// ReaderMutexLock; only SwapDataset's WriterMutexLock may store it.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class EpochHolder {
 public:
  long Load() const {
    omega::ReaderMutexLock lock(epoch_mu_);
    return epoch_;  // OK: shared capability suffices for reads.
  }

  void BrokenStore(long next) {
    omega::ReaderMutexLock lock(epoch_mu_);
    // BAD: mutation under a reader lock — concurrent readers would observe
    // a torn swap. TSA: "writing variable 'epoch_' requires holding mutex
    // 'epoch_mu_' exclusively".
    epoch_ = next;
  }

 private:
  mutable omega::SharedMutex epoch_mu_;
  long epoch_ OMEGA_GUARDED_BY(epoch_mu_) = 0;
};

}  // namespace

int main() {
  EpochHolder holder;
  holder.BrokenStore(1);
  return static_cast<int>(holder.Load());
}
