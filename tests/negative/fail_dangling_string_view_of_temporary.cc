// MUST NOT COMPILE (-Werror=dangling): keeps a string_view handed out by a
// *temporary* StringTable. The view points into the table's flattened
// character heap, which is freed at the end of the full-expression — the
// owned-backing twin of a view outliving a snapshot reader's mapping.
// Rejected because StringTable::operator[] is OMEGA_LIFETIME_BOUND.
// expect-error: [-Werror,-Wdangling
#include <string>
#include <string_view>
#include <vector>

#include "store/string_table.h"

namespace {

std::string_view FirstLabel() {
  const std::vector<std::string> strings = {"alpha", "beta"};
  // BAD: the StringTable temporary (and its heap) dies at the semicolon.
  std::string_view first = omega::StringTable::FromStrings(strings)[0];
  return first;
}

}  // namespace

int main() { return static_cast<int>(FirstLabel().size()); }
