// MUST NOT COMPILE (-Werror=thread-safety): acquires the same
// non-recursive Mutex twice on one thread — self-deadlock at runtime,
// "acquiring mutex 'mu_' that is already held" at compile time. The
// classic shape: a locked public method calling another locked public
// method instead of the _Locked/OMEGA_REQUIRES private variant.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Queue {
 public:
  void Push(int v) {
    omega::MutexLock lock(mu_);
    size_ += static_cast<long>(v != 0);
    // BAD: Size() re-acquires mu_ while this frame still holds it.
    last_size_ = Size();
  }

  long Size() {
    omega::MutexLock lock(mu_);
    return size_;
  }

 private:
  omega::Mutex mu_;
  long size_ OMEGA_GUARDED_BY(mu_) = 0;
  long last_size_ OMEGA_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Queue queue;
  queue.Push(1);
  return 0;
}
