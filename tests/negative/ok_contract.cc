// MUST COMPILE cleanly under -Werror=thread-safety: exercises the same
// types and idioms as the fail_*.cc fixtures, but correctly. Its job is to
// prove the negative fixtures fail because of their seeded violations —
// not because the wrappers, flags, or include paths are broken.
#include "common/atomics.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Service {
 public:
  void Push(int v) OMEGA_EXCLUDES(mu_) {
    omega::MutexLock lock(mu_);
    size_ += static_cast<long>(v != 0);
    last_size_ = SizeLocked();  // REQUIRES variant, no re-acquire
    cv_.NotifyOne();
    approx_pushes_.FetchAdd(1);  // documented relaxed counter: no capability
  }

  void WaitNonEmpty() OMEGA_EXCLUDES(mu_) {
    omega::MutexLock lock(mu_);
    // Explicit wait loop (repo convention): the predicate is checked in
    // annotated code, not inside an unanalysable lambda.
    while (size_ == 0) cv_.Wait(mu_);
  }

  long SwapEpoch(long next) OMEGA_EXCLUDES(epoch_mu_) {
    omega::WriterMutexLock lock(epoch_mu_);
    long prev = epoch_;
    epoch_ = next;  // exclusive capability held: store is legal
    return prev;
  }

  long ReadEpoch() const OMEGA_EXCLUDES(epoch_mu_) {
    omega::ReaderMutexLock lock(epoch_mu_);
    return epoch_;  // shared capability held: load is legal
  }

 private:
  long SizeLocked() const OMEGA_REQUIRES(mu_) { return size_; }

  mutable omega::Mutex mu_;
  omega::CondVar cv_;
  long size_ OMEGA_GUARDED_BY(mu_) = 0;
  long last_size_ OMEGA_GUARDED_BY(mu_) = 0;

  mutable omega::SharedMutex epoch_mu_;
  long epoch_ OMEGA_GUARDED_BY(epoch_mu_) = 0;

  omega::RelaxedAtomic<long> approx_pushes_;
};

}  // namespace

int main() {
  Service service;
  service.Push(1);
  service.WaitNonEmpty();
  service.SwapEpoch(2);
  return static_cast<int>(service.ReadEpoch() - 2);
}
