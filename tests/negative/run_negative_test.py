#!/usr/bin/env python3
"""Negative-compilation harness for the compile-time contracts.

Positive tests prove correct code compiles; this proves INCORRECT code does
not. Each `fail_*.cc` fixture seeds one contract violation and must be
REJECTED with the diagnostic family it declares — not some unrelated error
masking a fixture typo. Two contract layers share the harness:

 - thread-safety (PR 6): guarded read without the lock, double acquire,
   release without hold, ... rejected by -Werror=thread-safety.
 - lifetimes (this layer): a span taken from a temporary ConstArray, a
   borrowed view of a local Dataset returned, a StringTable string_view
   outliving its table, ... rejected by -Werror=dangling /
   -Werror=return-stack-address via the OMEGA_LIFETIME_BOUND /
   OMEGA_OWNER_TYPE annotations (common/lifetime_annotations.h).

Each fixture declares its expected diagnostic with a header line

    // expect-error: [-Werror,-Wdangling

(substring matched against the compiler's stderr; the bracketed form keeps
an unrelated driver error that merely *mentions* the flag from counting as
a rejection). Fixtures without the directive default to the thread-safety
family, so the PR-6 fixtures run unchanged. `ok_*.cc` fixtures use the same
types correctly and must compile under the union of all contract flags,
proving failures come from the seeded violation rather than broken fixtures
or flags.

Clang-only: the OMEGA_* annotation macros expand to nothing elsewhere, so
CMake registers this test only when CMAKE_CXX_COMPILER_ID matches Clang.
Usage:
    run_negative_test.py --compiler clang++ --include-dir src \
                         --fixture-dir tests/negative
"""
import argparse
import re
import subprocess
import sys
from pathlib import Path

# Default diagnostic family (fixtures predating the directive are all
# thread-safety). Clang suffixes each promoted diagnostic with its flag
# group, e.g. "[-Werror,-Wthread-safety-analysis]".
DEFAULT_EXPECTED = "[-Werror,-Wthread-safety"

# Both contract layers' flags are active for every fixture: ok fixtures must
# be clean under all of them, and a fail fixture must trip its *declared*
# family even with the other layer's flags on.
FLAGS = ["-std=c++20", "-fsyntax-only",
         "-Wthread-safety", "-Werror=thread-safety",
         "-Werror=dangling", "-Werror=dangling-gsl",
         "-Werror=return-stack-address"]

EXPECT_DIRECTIVE = re.compile(r"^//\s*expect-error:\s*(\S+)\s*$",
                              re.MULTILINE)


def expected_diagnostic(fixture: Path) -> str:
    m = EXPECT_DIRECTIVE.search(fixture.read_text())
    return m.group(1) if m else DEFAULT_EXPECTED


def compile_fixture(compiler, include_dir, fixture):
    cmd = [compiler, *FLAGS, "-I", str(include_dir), str(fixture)]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    return proc.returncode, proc.stderr


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--compiler", required=True)
    parser.add_argument("--include-dir", required=True, type=Path)
    parser.add_argument("--fixture-dir", type=Path,
                        default=Path(__file__).resolve().parent)
    args = parser.parse_args()

    fail_fixtures = sorted(args.fixture_dir.glob("fail_*.cc"))
    ok_fixtures = sorted(args.fixture_dir.glob("ok_*.cc"))
    if len(fail_fixtures) < 2:
        print(f"ERROR: expected >= 2 fail_*.cc fixtures in "
              f"{args.fixture_dir}, found {len(fail_fixtures)}")
        return 1

    failures = []
    for fixture in ok_fixtures:
        code, stderr = compile_fixture(args.compiler, args.include_dir,
                                       fixture)
        if code != 0:
            failures.append(f"{fixture.name}: expected clean compile, got "
                            f"exit {code}:\n{stderr}")
        else:
            print(f"PASS {fixture.name}: compiles cleanly")

    for fixture in fail_fixtures:
        expected = expected_diagnostic(fixture)
        code, stderr = compile_fixture(args.compiler, args.include_dir,
                                       fixture)
        if code == 0:
            failures.append(f"{fixture.name}: seeded violation was NOT "
                            "rejected — the contract has a hole")
        elif expected not in stderr:
            failures.append(f"{fixture.name}: rejected, but without a "
                            f"{expected} diagnostic (fixture "
                            f"broken?):\n{stderr}")
        else:
            print(f"PASS {fixture.name}: rejected with {expected}")

    if failures:
        print()
        for failure in failures:
            print(f"FAIL {failure}")
        return 1
    print(f"\nOK: {len(ok_fixtures)} positive, {len(fail_fixtures)} "
          "negative fixtures behaved as required")
    return 0


if __name__ == "__main__":
    sys.exit(main())
