#!/usr/bin/env python3
"""Negative-compilation harness for the thread-safety contracts.

Positive tests prove correct code compiles; this proves INCORRECT code does
not. Each `fail_*.cc` fixture seeds one concurrency-contract violation
(guarded read without the lock, double acquire, release without hold, ...)
and must be REJECTED by `-Werror=thread-safety` — with a -Wthread-safety
diagnostic, not some unrelated error masking a fixture typo. `ok_*.cc`
fixtures use the same types correctly and must compile, proving failures
come from the seeded violation rather than broken fixtures or flags.

Clang-only: the OMEGA_* annotation macros expand to nothing elsewhere, so
CMake registers this test only when CMAKE_CXX_COMPILER_ID matches Clang.
Usage:
    run_negative_test.py --compiler clang++ --include-dir src \
                         --fixture-dir tests/negative
"""
import argparse
import subprocess
import sys
from pathlib import Path

# The diagnostic family every fail fixture must trip. Clang suffixes each
# promoted thread-safety diagnostic with its flag group, e.g.
# "[-Werror,-Wthread-safety-analysis]". Matching the bracketed form (not
# the bare flag name) keeps an unrelated driver error that merely *mentions*
# the flag — e.g. "unrecognized command-line option '-Wthread-safety'" —
# from counting as a rejection.
EXPECTED_DIAGNOSTIC = "[-Werror,-Wthread-safety"

FLAGS = ["-std=c++20", "-fsyntax-only", "-Wthread-safety",
         "-Werror=thread-safety"]


def compile_fixture(compiler, include_dir, fixture):
    cmd = [compiler, *FLAGS, "-I", str(include_dir), str(fixture)]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    return proc.returncode, proc.stderr


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--compiler", required=True)
    parser.add_argument("--include-dir", required=True, type=Path)
    parser.add_argument("--fixture-dir", type=Path,
                        default=Path(__file__).resolve().parent)
    args = parser.parse_args()

    fail_fixtures = sorted(args.fixture_dir.glob("fail_*.cc"))
    ok_fixtures = sorted(args.fixture_dir.glob("ok_*.cc"))
    if len(fail_fixtures) < 2:
        print(f"ERROR: expected >= 2 fail_*.cc fixtures in "
              f"{args.fixture_dir}, found {len(fail_fixtures)}")
        return 1

    failures = []
    for fixture in ok_fixtures:
        code, stderr = compile_fixture(args.compiler, args.include_dir,
                                       fixture)
        if code != 0:
            failures.append(f"{fixture.name}: expected clean compile, got "
                            f"exit {code}:\n{stderr}")
        else:
            print(f"PASS {fixture.name}: compiles cleanly")

    for fixture in fail_fixtures:
        code, stderr = compile_fixture(args.compiler, args.include_dir,
                                       fixture)
        if code == 0:
            failures.append(f"{fixture.name}: seeded violation was NOT "
                            "rejected — the contract has a hole")
        elif EXPECTED_DIAGNOSTIC not in stderr:
            failures.append(f"{fixture.name}: rejected, but without a "
                            f"{EXPECTED_DIAGNOSTIC} diagnostic (fixture "
                            f"broken?):\n{stderr}")
        else:
            print(f"PASS {fixture.name}: rejected with "
                  f"{EXPECTED_DIAGNOSTIC}")

    if failures:
        print()
        for failure in failures:
            print(f"FAIL {failure}")
        return 1
    print(f"\nOK: {len(ok_fixtures)} positive, {len(fail_fixtures)} "
          "negative fixtures behaved as required")
    return 0


if __name__ == "__main__":
    sys.exit(main())
