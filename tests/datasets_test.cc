// Generator validation: Fig. 2 hierarchy shapes, Fig. 3 scaling behaviour,
// determinism, and the qualitative query behaviours of Fig. 5 / Fig. 10.
#include <gtest/gtest.h>

#include "datasets/l4all.h"
#include "datasets/query_sets.h"
#include "datasets/yago.h"
#include "eval/query_engine.h"

namespace omega {
namespace {

const L4AllDataset& SmallL4All() {
  static const L4AllDataset* dataset = [] {
    auto* d = new L4AllDataset(GenerateL4All(L4AllScalePreset(1)));
    return d;
  }();
  return *dataset;
}

const YagoDataset& SmallYago() {
  static const YagoDataset* dataset = [] {
    YagoOptions options;
    options.scale = 0.004;
    auto* d = new YagoDataset(GenerateYago(options));
    return d;
  }();
  return *dataset;
}

std::vector<QueryAnswer> RunNamed(const GraphStore& g, const Ontology& o,
                                  const std::vector<NamedQuery>& set,
                                  const std::string& name, ConjunctMode mode,
                                  size_t limit) {
  for (const NamedQuery& nq : set) {
    if (nq.name != name) continue;
    Result<Query> q = MakeSingleConjunctQuery(nq.conjunct, mode);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    QueryEngine engine(&g, &o);
    QueryEngineOptions options;
    options.evaluator.max_live_tuples = 20000000;
    Result<std::vector<QueryAnswer>> answers =
        engine.ExecuteTopK(*q, limit, options);
    EXPECT_TRUE(answers.ok()) << name << ": " << answers.status().ToString();
    if (!answers.ok()) return {};
    return std::move(answers).value();
  }
  ADD_FAILURE() << "no such query: " << name;
  return {};
}

// --- L4All -------------------------------------------------------------------

TEST(L4AllTest, Fig2HierarchyShapes) {
  const Ontology& o = SmallL4All().ontology;
  struct Row {
    const char* root;
    uint32_t depth;
    double fanout_lo, fanout_hi;
  };
  // Paper (Fig. 2): Episode 2/2.67, Subject 2/8, Occupation 4/4.08,
  // EQL 2/3.89, Industry Sector 1/21. Fan-outs are matched approximately.
  const Row rows[] = {{"Episode", 2, 2.3, 3.0},
                      {"Subject", 2, 7.0, 9.0},
                      {"Occupation", 4, 3.6, 4.5},
                      {"Education Qualification Level", 2, 3.5, 4.2},
                      {"Industry Sector", 1, 20.0, 22.0}};
  for (const Row& row : rows) {
    auto root = o.FindClass(row.root);
    ASSERT_TRUE(root.has_value()) << row.root;
    EXPECT_EQ(o.HierarchyDepth(*root), row.depth) << row.root;
    const double fanout = o.AverageFanOut(*root);
    EXPECT_GE(fanout, row.fanout_lo) << row.root;
    EXPECT_LE(fanout, row.fanout_hi) << row.root;
  }
}

TEST(L4AllTest, PropertyHierarchy) {
  const Ontology& o = SmallL4All().ontology;
  auto next = o.FindProperty("next");
  auto prereq = o.FindProperty("prereq");
  ASSERT_TRUE(next && prereq);
  ASSERT_EQ(o.PropertyAncestors(*next).size(), 1u);
  EXPECT_EQ(o.PropertyName(o.PropertyAncestors(*next)[0].element),
            "isEpisodeLink");
  ASSERT_EQ(o.PropertyAncestors(*prereq).size(), 1u);
}

TEST(L4AllTest, ScalePresetsMatchPaperTimelineCounts) {
  EXPECT_EQ(L4AllScalePreset(1).num_timelines, 143u);
  EXPECT_EQ(L4AllScalePreset(2).num_timelines, 1201u);
  EXPECT_EQ(L4AllScalePreset(3).num_timelines, 5221u);
  EXPECT_EQ(L4AllScalePreset(4).num_timelines, 11416u);
}

TEST(L4AllTest, L1SizeInPaperBallpark) {
  const GraphStore& g = SmallL4All().graph;
  // Paper L1: 2,691 nodes / 19,856 edges. The seed timelines are synthetic,
  // so sizes are matched to the right order of magnitude, not exactly.
  EXPECT_GE(g.NumNodes(), 1500u);
  EXPECT_LE(g.NumNodes(), 5000u);
  EXPECT_GE(g.NumEdges(), 8000u);
  EXPECT_LE(g.NumEdges(), 40000u);
}

TEST(L4AllTest, ScalingIsRoughlyLinear) {
  L4AllOptions tiny;
  tiny.num_timelines = 50;
  L4AllOptions bigger;
  bigger.num_timelines = 200;
  const auto small = GenerateL4All(tiny);
  const auto large = GenerateL4All(bigger);
  const double node_ratio = static_cast<double>(large.graph.NumNodes()) /
                            static_cast<double>(small.graph.NumNodes());
  EXPECT_GT(node_ratio, 3.0);
  EXPECT_LT(node_ratio, 5.0);
}

TEST(L4AllTest, GenerationIsDeterministic) {
  L4AllOptions options;
  options.num_timelines = 40;
  const auto a = GenerateL4All(options);
  const auto b = GenerateL4All(options);
  EXPECT_EQ(a.graph.NumNodes(), b.graph.NumNodes());
  EXPECT_EQ(a.graph.NumEdges(), b.graph.NumEdges());
  // Spot-check a node's adjacency.
  const auto n = a.graph.FindNode("Alumni 1 Episode 1");
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(a.graph.Degree(*n), b.graph.Degree(*n));
}

TEST(L4AllTest, QuerySetParses) {
  for (const NamedQuery& nq : L4AllQuerySet()) {
    for (ConjunctMode mode : {ConjunctMode::kExact, ConjunctMode::kApprox,
                              ConjunctMode::kRelax}) {
      Result<Query> q = MakeSingleConjunctQuery(nq.conjunct, mode);
      EXPECT_TRUE(q.ok()) << nq.name << ": " << q.status().ToString();
    }
  }
}

TEST(L4AllTest, Q1ExactFindsWorkEpisodes) {
  const auto& d = SmallL4All();
  auto answers = RunNamed(d.graph, d.ontology, L4AllQuerySet(), "Q1",
                          ConjunctMode::kExact, 0);
  EXPECT_GT(answers.size(), 100u);  // "well over 100 exact results"
}

TEST(L4AllTest, Q8ExactReturnsNothing) {
  // (Mathematical and Computer Sciences, type.prereq+, ?X): class nodes have
  // no outgoing type edges, so the exact query is empty (Fig. 5: 0 rows).
  const auto& d = SmallL4All();
  auto answers = RunNamed(d.graph, d.ontology, L4AllQuerySet(), "Q8",
                          ConjunctMode::kExact, 0);
  EXPECT_TRUE(answers.empty());
}

TEST(L4AllTest, Q8ApproxRecoversAnswers) {
  const auto& d = SmallL4All();
  auto answers = RunNamed(d.graph, d.ontology, L4AllQuerySet(), "Q8",
                          ConjunctMode::kApprox, 100);
  EXPECT_FALSE(answers.empty());
  for (const QueryAnswer& a : answers) EXPECT_GT(a.distance, 0);
}

TEST(L4AllTest, Q10RelaxExpandsThroughSiblingClasses) {
  const auto& d = SmallL4All();
  auto exact = RunNamed(d.graph, d.ontology, L4AllQuerySet(), "Q10",
                        ConjunctMode::kExact, 0);
  auto relaxed = RunNamed(d.graph, d.ontology, L4AllQuerySet(), "Q10",
                          ConjunctMode::kRelax, 100);
  EXPECT_GT(relaxed.size(), exact.size());
  bool has_nonzero = false;
  for (const QueryAnswer& a : relaxed) has_nonzero |= (a.distance > 0);
  EXPECT_TRUE(has_nonzero);
}

TEST(L4AllTest, Q5ExactHasManyAnswers) {
  const auto& d = SmallL4All();
  auto answers = RunNamed(d.graph, d.ontology, L4AllQuerySet(), "Q5",
                          ConjunctMode::kExact, 150);
  EXPECT_GT(answers.size(), 100u);  // Fig. 5 note: Q4-Q7 well over 100
}

// --- YAGO --------------------------------------------------------------------

TEST(YagoTest, ShapeMatchesPaperDescription) {
  const auto& d = SmallYago();
  // One classification hierarchy of depth 2.
  auto root = d.ontology.FindClass("yago_entity");
  ASSERT_TRUE(root.has_value());
  EXPECT_EQ(d.ontology.HierarchyDepth(*root), 2u);
  // Exactly 38 properties including type: 37 ontology properties + type
  // (type is not an ontology property node).
  size_t labels_in_graph = d.graph.labels().size();
  EXPECT_EQ(labels_in_graph, 38u);
  // Two property hierarchies with 6 and 2 subproperties.
  auto rlbo = d.ontology.FindProperty("relationLocatedByObject");
  ASSERT_TRUE(rlbo.has_value());
  EXPECT_EQ(d.ontology.PropertyDownSet(*rlbo).size(), 7u);  // self + 6
  auto linked = d.ontology.FindProperty("linkedTo");
  ASSERT_TRUE(linked.has_value());
  EXPECT_EQ(d.ontology.PropertyDownSet(*linked).size(), 3u);  // self + 2
}

TEST(YagoTest, GenerationIsDeterministic) {
  YagoOptions options;
  options.scale = 0.002;
  const auto a = GenerateYago(options);
  const auto b = GenerateYago(options);
  EXPECT_EQ(a.graph.NumNodes(), b.graph.NumNodes());
  EXPECT_EQ(a.graph.NumEdges(), b.graph.NumEdges());
}

TEST(YagoTest, SeedEntitiesExist) {
  const GraphStore& g = SmallYago().graph;
  for (const char* name : {"UK", "Germany", "Halle_Saxony-Anhalt", "Li_Peng",
                           "Annie Haslam", "wordnet_ziggurat",
                           "wordnet_city"}) {
    EXPECT_TRUE(g.FindNode(name).has_value()) << name;
  }
}

TEST(YagoTest, QuerySetParses) {
  for (const NamedQuery& nq : YagoQuerySet()) {
    Result<Query> q = MakeSingleConjunctQuery(nq.conjunct,
                                              ConjunctMode::kExact);
    EXPECT_TRUE(q.ok()) << nq.name << ": " << q.status().ToString();
  }
}

TEST(YagoTest, Q9ExactEmptyApproxAndRelaxRecover) {
  const auto& d = SmallYago();
  // Fig. 10 row Q9: exact 0; APPROX 100 at distance 1; RELAX 100 at 1.
  auto exact = RunNamed(d.graph, d.ontology, YagoQuerySet(), "Q9",
                        ConjunctMode::kExact, 0);
  EXPECT_TRUE(exact.empty());

  auto approx = RunNamed(d.graph, d.ontology, YagoQuerySet(), "Q9",
                         ConjunctMode::kApprox, 50);
  ASSERT_FALSE(approx.empty());
  EXPECT_EQ(approx[0].distance, 1);

  auto relax = RunNamed(d.graph, d.ontology, YagoQuerySet(), "Q9",
                        ConjunctMode::kRelax, 50);
  ASSERT_FALSE(relax.empty());
  EXPECT_EQ(relax[0].distance, 1);
}

TEST(YagoTest, Q2ExactFindsPrizeWinningCoAlumni) {
  const auto& d = SmallYago();
  auto answers = RunNamed(d.graph, d.ontology, YagoQuerySet(), "Q2",
                          ConjunctMode::kExact, 0);
  // The deterministic seed wiring guarantees the two laureates; random
  // edges may add a few more.
  EXPECT_GE(answers.size(), 2u);
  EXPECT_LE(answers.size(), 20u);
}

TEST(YagoTest, Q3ExactEmptyRelaxRecoversViaClassAncestor) {
  const auto& d = SmallYago();
  auto exact = RunNamed(d.graph, d.ontology, YagoQuerySet(), "Q3",
                        ConjunctMode::kExact, 0);
  EXPECT_TRUE(exact.empty());  // nothing is located *in* a ziggurat
  auto relax = RunNamed(d.graph, d.ontology, YagoQuerySet(), "Q3",
                        ConjunctMode::kRelax, 50);
  ASSERT_FALSE(relax.empty());
  EXPECT_GT(relax[0].distance, 0);
}

TEST(YagoTest, Q4ExactEmptyBecauseAthletesNeverMarry) {
  const auto& d = SmallYago();
  auto answers = RunNamed(d.graph, d.ontology, YagoQuerySet(), "Q4",
                          ConjunctMode::kExact, 10);
  EXPECT_TRUE(answers.empty());
}

TEST(YagoTest, Q4ApproxExhaustsSmallBudget) {
  // Fig. 10's '?': APPROX Q4 runs out of memory. Reproduced as a bounded
  // kResourceExhausted failure instead of an actual OOM.
  const auto& d = SmallYago();
  Result<Query> q = MakeSingleConjunctQuery(
      YagoQuerySet()[3].conjunct, ConjunctMode::kApprox);
  ASSERT_TRUE(q.ok());
  QueryEngine engine(&d.graph, &d.ontology);
  QueryEngineOptions options;
  options.evaluator.max_live_tuples = 2000;
  auto answers = engine.ExecuteTopK(*q, 100, options);
  ASSERT_FALSE(answers.ok());
  EXPECT_TRUE(answers.status().IsResourceExhausted());
}

TEST(YagoTest, Q8ExactHasManyAnswers) {
  const auto& d = SmallYago();
  auto answers = RunNamed(d.graph, d.ontology, YagoQuerySet(), "Q8",
                          ConjunctMode::kExact, 150);
  EXPECT_GT(answers.size(), 20u);  // singers' filmographies
}

TEST(YagoTest, ScaleGrowsTheGraph) {
  YagoOptions small;
  small.scale = 0.002;
  YagoOptions larger;
  larger.scale = 0.008;
  const auto a = GenerateYago(small);
  const auto b = GenerateYago(larger);
  EXPECT_GT(b.graph.NumNodes(), a.graph.NumNodes());
  EXPECT_GT(b.graph.NumEdges(), a.graph.NumEdges());
}

}  // namespace
}  // namespace omega
