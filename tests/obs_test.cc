// Unit tests for the observability layer: metrics registry instruments and
// their Prometheus text exposition, per-query trace spans, EXPLAIN ANALYZE
// actual-vs-estimated rendering, the service's instrument wiring (with an
// injected private registry), cache-generation reset semantics vs the
// monotonic registry counters, epoch swap/drain accounting, and the
// snapshot layer's open/mmap metrics.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/timer.h"
#include "eval/query_engine.h"
#include "net/ops_routes.h"
#include "obs/event_log.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rpq/query_parser.h"
#include "service/query_service.h"
#include "snapshot/snapshot_reader.h"
#include "snapshot/snapshot_writer.h"
#include "store/graph_builder.h"
#include "test_util.h"

namespace omega {
namespace {

using omega::testing::MakeGraph;
using omega::testing::Qy;

// --- MetricsRegistry ---------------------------------------------------------

TEST(ObsMetricsTest, CounterGaugeHistogramBasics) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("requests_total", "help");
  c->Increment();
  c->Increment(4);
  EXPECT_EQ(c->Value(), 5u);
  // Same (name, labels) -> same instrument; different labels -> distinct.
  EXPECT_EQ(registry.GetCounter("requests_total"), c);
  EXPECT_NE(registry.GetCounter("requests_total", "", "k=\"v\""), c);

  Gauge* g = registry.GetGauge("depth");
  g->Set(7);
  g->Add(-3);
  EXPECT_EQ(g->Value(), 4);

  Histogram* h = registry.GetHistogram("lat_us", "", "", {10, 100, 1000});
  h->Observe(5);     // bucket 0 (le=10)
  h->Observe(10);    // inclusive upper bound: still bucket 0
  h->Observe(500);   // bucket 2 (le=1000)
  h->Observe(5000);  // +Inf bucket
  EXPECT_EQ(h->Count(), 4u);
  EXPECT_EQ(h->Sum(), 5515u);
  EXPECT_EQ(h->BucketCount(0), 2u);
  EXPECT_EQ(h->BucketCount(1), 0u);
  EXPECT_EQ(h->BucketCount(2), 1u);
  EXPECT_EQ(h->BucketCount(3), 1u);  // +Inf
}

TEST(ObsMetricsTest, RenderTextPrometheusFormat) {
  MetricsRegistry registry;
  registry.GetCounter("omega_reqs_total", "Requests", "class=\"EXACT\"")
      ->Increment(3);
  registry.GetCounter("omega_reqs_total", "Requests", "class=\"RELAX\"")
      ->Increment();
  registry.GetGauge("omega_depth", "Depth")->Set(2);
  Histogram* h = registry.GetHistogram("omega_lat_us", "Latency", "", {10, 20});
  h->Observe(15);

  const std::string text = registry.RenderText();
  // Families render HELP/TYPE once, then every labelled series.
  EXPECT_NE(text.find("# HELP omega_reqs_total Requests"), std::string::npos);
  EXPECT_NE(text.find("# TYPE omega_reqs_total counter"), std::string::npos);
  EXPECT_NE(text.find("omega_reqs_total{class=\"EXACT\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("omega_reqs_total{class=\"RELAX\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE omega_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("omega_depth 2"), std::string::npos);
  // Histogram buckets are cumulative and end with +Inf == _count.
  EXPECT_NE(text.find("# TYPE omega_lat_us histogram"), std::string::npos);
  EXPECT_NE(text.find("omega_lat_us_bucket{le=\"10\"} 0"), std::string::npos);
  EXPECT_NE(text.find("omega_lat_us_bucket{le=\"20\"} 1"), std::string::npos);
  EXPECT_NE(text.find("omega_lat_us_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("omega_lat_us_sum 15"), std::string::npos);
  EXPECT_NE(text.find("omega_lat_us_count 1"), std::string::npos);
  // HELP/TYPE appear once per family even with two series.
  EXPECT_EQ(text.find("# HELP omega_reqs_total"),
            text.rfind("# HELP omega_reqs_total"));
}

// --- TraceRecorder -----------------------------------------------------------

TEST(ObsTraceTest, SpansEventsAnnotationsAndJson) {
  TraceRecorder trace;
  const TraceRecorder::SpanId a = trace.Begin("plan");
  trace.Annotate(a, "conjuncts", 2);
  trace.End(a);
  const TraceRecorder::SpanId e = trace.Event("epoch_pin");
  trace.AnnotateStr(e, "class", "EXACT");
  trace.RecordComplete("queue_wait", 125.0);
  EXPECT_EQ(trace.NumSpans(), 3u);

  const std::vector<TraceRecorder::Span> spans = trace.Snapshot();
  EXPECT_EQ(spans[0].name, "plan");
  EXPECT_GE(spans[0].dur_us, 0.0);
  ASSERT_EQ(spans[0].attrs.size(), 1u);
  EXPECT_EQ(spans[0].attrs[0].key, "conjuncts");
  EXPECT_EQ(spans[0].attrs[0].value, 2);
  EXPECT_EQ(spans[1].dur_us, 0.0);  // instant event
  EXPECT_EQ(spans[2].name, "queue_wait");
  EXPECT_DOUBLE_EQ(spans[2].dur_us, 125.0);
  // RecordComplete back-dates the start so the span nests plausibly.
  EXPECT_GE(spans[2].start_us, 0.0);

  const std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"spans\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"plan\""), std::string::npos);
  EXPECT_NE(json.find("\"conjuncts\":2"), std::string::npos);
  EXPECT_NE(json.find("\"class\":\"EXACT\""), std::string::npos);
}

TEST(ObsTraceTest, ScopedSpanIsNullSafe) {
  {
    ScopedSpan span(nullptr, "noop");
    span.Annotate("k", 1);
    span.AnnotateStr("s", "v");
  }
  TraceRecorder trace;
  {
    ScopedSpan span(&trace, "work");
    span.Annotate("k", 1);
  }
  const std::vector<TraceRecorder::Span> spans = trace.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "work");
  EXPECT_GE(spans[0].dur_us, 0.0);  // closed by the destructor
}

// --- EXPLAIN ANALYZE ---------------------------------------------------------

/// Hub-skewed graph: one node with a large type fan-in, so the planner's
/// uniform-degree estimate misses the actual cardinality by a wide margin —
/// exactly what EXPLAIN ANALYZE exists to expose.
GraphStore HubGraph() {
  GraphBuilder builder;
  for (int i = 0; i < 150; ++i) {
    (void)builder.AddEdge("item" + std::to_string(i), "type", "Hub");
    if (i % 30 == 0) {
      (void)builder.AddEdge("item" + std::to_string(i), "type", "Rare");
    }
  }
  (void)builder.AddEdge("Hub", "related", "Rare");
  return std::move(builder).Finalize();
}

TEST(ObsExplainAnalyzeTest, ShowsActualVsEstimatedWithRatio) {
  const GraphStore graph = HubGraph();
  QueryEngine engine(&graph, nullptr);
  const Query query = Qy("(?X) <- (Hub, type-, ?X)");

  Result<std::unique_ptr<QueryResultStream>> stream =
      engine.Execute(query, {});
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  QueryAnswer answer;
  size_t answers = 0;
  while ((*stream)->Next(&answer)) ++answers;
  ASSERT_TRUE((*stream)->status().ok());
  EXPECT_EQ(answers, 150u);

  const std::string rendered = (*stream)->ExplainString();
  // Estimates render alongside actuals with the mis-estimate ratio.
  EXPECT_NE(rendered.find("est="), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("act=150 rows"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("err="), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("popped="), std::string::npos) << rendered;
}

TEST(ObsExplainAnalyzeTest, JoinNodesReportActualRowsToo) {
  const GraphStore graph = HubGraph();
  QueryEngine engine(&graph, nullptr);
  const Query query = Qy("(?X, ?Y) <- (?X, type, ?Z), (?X, type, ?Y)");

  Result<std::unique_ptr<QueryResultStream>> stream =
      engine.Execute(query, {});
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  QueryAnswer answer;
  while ((*stream)->Next(&answer)) {
  }
  ASSERT_TRUE((*stream)->status().ok());

  const std::string rendered = (*stream)->ExplainString();
  EXPECT_NE(rendered.find("RankJoin"), std::string::npos) << rendered;
  // Both the join node and its leaves carry {act=... err=...} blocks.
  EXPECT_NE(rendered.find("live-peak="), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("err="), std::string::npos) << rendered;
}

// --- Service wiring ----------------------------------------------------------

const GraphStore& ServiceGraph() {
  static const GraphStore* graph = new GraphStore(MakeGraph({
      {"a1", "knows", "a2"},
      {"a2", "knows", "a3"},
      {"a3", "knows", "a1"},
      {"a1", "likes", "a3"},
  }));
  return *graph;
}

QueryRequest Req(const std::string& text, bool bypass_cache = false) {
  QueryRequest request;
  request.query = Qy(text);
  request.top_k = 10;
  request.bypass_cache = bypass_cache;
  return request;
}

TEST(ObsServiceTest, InjectedRegistryCountsSubmissionsAndCompletions) {
  MetricsRegistry registry;
  QueryServiceOptions options;
  options.num_workers = 2;
  options.metrics = &registry;
  QueryService service(&ServiceGraph(), nullptr, options);

  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(
        service.Execute(Req("(?X) <- (?X, knows, ?Y)")).status.ok());
  }
  EXPECT_TRUE(
      service.Execute(Req("(?X) <- (?X, likes, ?Y)", /*bypass_cache=*/true))
          .status.ok());

  EXPECT_EQ(registry.GetCounter("omega_service_submitted_total")->Value(), 4u);
  EXPECT_EQ(registry
                .GetCounter("omega_service_completed_total", "",
                            "status=\"ok\"")
                ->Value(),
            4u);
  // Two repeats of the cached query hit; the first miss inserted.
  EXPECT_EQ(registry.GetCounter("omega_cache_hits_total")->Value(), 2u);
  EXPECT_GE(registry.GetCounter("omega_cache_misses_total")->Value(), 1u);
  EXPECT_EQ(registry.GetCounter("omega_cache_insertions_total")->Value(), 1u);
  // Executed (non-hit) requests land in the per-class latency histogram.
  Histogram* exec = registry.GetHistogram("omega_service_exec_us", "",
                                          "class=\"EXACT\"");
  EXPECT_EQ(exec->Count(), 2u);
  EXPECT_EQ(registry.GetGauge("omega_service_queue_depth")->Value(), 0);
  // The whole wiring shows up in the exposition.
  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("omega_service_submitted_total 4"), std::string::npos);
  EXPECT_NE(text.find("omega_service_exec_us_count{class=\"EXACT\"} 2"),
            std::string::npos);
}

TEST(ObsServiceTest, EnableMetricsFalseCreatesNoInstruments) {
  MetricsRegistry registry;
  QueryServiceOptions options;
  options.num_workers = 1;
  options.metrics = &registry;
  options.enable_metrics = false;
  QueryService service(&ServiceGraph(), nullptr, options);
  EXPECT_TRUE(service.Execute(Req("(?X) <- (?X, knows, ?Y)")).status.ok());
  // The registry was never touched: nothing to render, and ServiceStats
  // still works (it never depended on the registry).
  EXPECT_EQ(registry.RenderText(), "");
  EXPECT_EQ(service.stats().submitted, 1u);
}

// S1 regression: cache-generation resets must clear the per-class and
// per-cache counters but leave the registry's monotonic totals untouched.
TEST(ObsServiceTest, CacheGenerationResetKeepsRegistryMonotonic) {
  MetricsRegistry registry;
  QueryServiceOptions options;
  options.num_workers = 1;
  options.metrics = &registry;
  QueryService service(&ServiceGraph(), nullptr, options);

  EXPECT_TRUE(service.Execute(Req("(?X) <- (?X, knows, ?Y)")).status.ok());
  EXPECT_TRUE(service.Execute(Req("(?X) <- (?X, knows, ?Y)")).status.ok());
  ServiceStats stats = service.stats();
  const size_t exact = static_cast<size_t>(QueryClass::kExact);
  EXPECT_EQ(stats.per_class[exact].cache_hits, 1u);
  EXPECT_EQ(stats.cache.hits, 1u);

  service.InvalidateCache();
  stats = service.stats();
  EXPECT_EQ(stats.per_class[exact].cache_hits, 0u);
  EXPECT_EQ(stats.per_class[exact].cache_lookups, 0u);
  EXPECT_EQ(stats.cache.hits, 0u);
  // The generation reset zeroed the cache's own eviction tally too, but the
  // registry keeps the Clear()-time eviction: Prometheus counters never
  // rewind.
  EXPECT_EQ(stats.cache.evictions, 0u);
  EXPECT_GT(registry.GetCounter("omega_cache_evictions_total")->Value(), 0u);
  EXPECT_EQ(registry.GetCounter("omega_cache_hits_total")->Value(), 1u);
}

TEST(ObsServiceTest, SwapAndDrainAccounting) {
  MetricsRegistry registry;
  QueryServiceOptions options;
  options.num_workers = 1;
  options.metrics = &registry;
  std::shared_ptr<const Dataset> initial = Dataset::FromParts(
      MakeGraph({{"a", "knows", "b"}}), std::nullopt);
  std::shared_ptr<const Dataset> next = Dataset::FromParts(
      MakeGraph({{"x", "knows", "y"}, {"y", "knows", "z"}}), std::nullopt);
  QueryService service(initial, options);

  // No query ever pinned epoch 0, so the swap drains it synchronously.
  ASSERT_TRUE(service.SwapDataset(next).ok());
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.dataset_swaps, 1u);
  EXPECT_EQ(stats.epochs_retired, 1u);
  EXPECT_EQ(stats.epochs_drained, 1u);
  EXPECT_GE(stats.swap_ms_total, 0.0);
  EXPECT_GE(stats.drain_ms_total, 0.0);
  EXPECT_GE(stats.drain_ms_max, 0.0);
  EXPECT_EQ(registry.GetCounter("omega_service_swaps_total")->Value(), 1u);
  EXPECT_EQ(registry.GetHistogram("omega_service_swap_us")->Count(), 1u);
  EXPECT_EQ(registry.GetHistogram("omega_service_epoch_drain_us")->Count(),
            1u);

  // A query against the new epoch, then another swap: the pinned epoch 1
  // drains once its last ticket is gone (the worker may hold the ticket a
  // beat after Execute returns, so poll briefly).
  EXPECT_TRUE(service.Execute(Req("(?X) <- (?X, knows, ?Y)")).status.ok());
  ASSERT_TRUE(service.SwapDataset(initial).ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (service.stats().epochs_drained < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  stats = service.stats();
  EXPECT_EQ(stats.epochs_retired, 2u);
  EXPECT_EQ(stats.epochs_drained, 2u);
}

TEST(ObsServiceTest, PerQueryTraceCoversServiceAndEngine) {
  QueryServiceOptions options;
  options.num_workers = 1;
  options.enable_metrics = false;  // traces are independent of metrics
  QueryService service(&ServiceGraph(), nullptr, options);

  TraceRecorder trace;
  QueryRequest request = Req("(?X) <- (?X, knows, ?Y)", /*bypass_cache=*/true);
  request.trace = &trace;
  ASSERT_TRUE(service.Execute(std::move(request)).status.ok());

  std::vector<std::string> names;
  for (const TraceRecorder::Span& span : trace.Snapshot()) {
    names.push_back(span.name);
  }
  auto has = [&](const char* name) {
    return std::find(names.begin(), names.end(), name) != names.end();
  };
  EXPECT_TRUE(has("epoch_pin"));
  EXPECT_TRUE(has("queue_wait"));
  EXPECT_TRUE(has("plan"));     // recorded inside the engine
  EXPECT_TRUE(has("compile"));  // recorded inside the engine
  EXPECT_TRUE(has("execute"));
  // The operator totals were appended after draining.
  bool has_operator_span = false;
  for (const std::string& name : names) {
    if (name.rfind("op ", 0) == 0) has_operator_span = true;
  }
  EXPECT_TRUE(has_operator_span);

  // A cached re-run records the lookup hit instead of an execution.
  TraceRecorder hit_trace;
  QueryRequest repeat = Req("(?X) <- (?X, knows, ?Y)");
  ASSERT_TRUE(service.Execute(std::move(repeat)).status.ok());  // warm
  QueryRequest traced = Req("(?X) <- (?X, knows, ?Y)");
  traced.trace = &hit_trace;
  ASSERT_TRUE(service.Execute(std::move(traced)).status.ok());
  bool saw_hit = false;
  for (const TraceRecorder::Span& span : hit_trace.Snapshot()) {
    if (span.name != "cache_lookup") continue;
    for (const TraceRecorder::Attr& attr : span.attrs) {
      if (attr.key == "hit" && attr.value == 1) saw_hit = true;
    }
  }
  EXPECT_TRUE(saw_hit);
}

// --- Injected observability surfaces ----------------------------------------

// Regression for the shell's `.metrics` / `.trace save` routing: a service
// constructed with injected surfaces must expose exactly those through its
// accessors, and the Effective* helpers must resolve injected-or-global the
// way every consumer (shell, ops routes) does.
TEST(ObsServiceTest, InjectedSurfacesResolveThroughAccessors) {
  MetricsRegistry registry;
  FlightRecorder recorder;
  EventLog events;
  QueryServiceOptions options;
  options.num_workers = 1;
  options.metrics = &registry;
  options.flight_recorder = &recorder;
  options.events = &events;
  QueryService service(&ServiceGraph(), nullptr, options);

  EXPECT_EQ(service.metrics_registry(), &registry);
  EXPECT_EQ(service.flight_recorder(), &recorder);
  EXPECT_EQ(service.event_log(), &events);
  EXPECT_EQ(EffectiveMetricsRegistry(&service), &registry);
  EXPECT_EQ(EffectiveFlightRecorder(&service), &recorder);

  // No service at all -> the process-global registry, no recorder.
  EXPECT_EQ(EffectiveMetricsRegistry(nullptr), MetricsRegistry::Global());
  EXPECT_EQ(EffectiveFlightRecorder(nullptr), nullptr);

  // A service without injected surfaces resolves to the global registry
  // and reports no flight recorder.
  QueryServiceOptions plain;
  plain.num_workers = 1;
  plain.enable_metrics = false;
  QueryService bare(&ServiceGraph(), nullptr, plain);
  EXPECT_EQ(EffectiveMetricsRegistry(&bare), MetricsRegistry::Global());
  EXPECT_EQ(EffectiveFlightRecorder(&bare), nullptr);
}

TEST(ObsServiceTest, FlightRecorderCapturesEveryCompletion) {
  FlightRecorder recorder;
  QueryServiceOptions options;
  options.num_workers = 1;
  options.enable_metrics = false;
  options.flight_recorder = &recorder;
  QueryService service(&ServiceGraph(), nullptr, options);

  EXPECT_TRUE(service.Execute(Req("(?X) <- (?X, knows, ?Y)")).status.ok());
  EXPECT_TRUE(service.Execute(Req("(?X) <- (?X, knows, ?Y)")).status.ok());
  EXPECT_TRUE(
      service.Execute(Req("(?X) <- (?X, likes, ?Y)", /*bypass_cache=*/true))
          .status.ok());

  EXPECT_EQ(recorder.recorded_total(), 3u);
  const std::vector<QueryFlightRecord> recent = recorder.Recent();
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_STREQ(recent[0].query_class, "EXACT");
  EXPECT_EQ(recent[0].status, StatusCode::kOk);
  // The repeat of the first query served from cache, same canonical key.
  EXPECT_TRUE(recent[1].cache_hit);
  EXPECT_EQ(recent[1].key_hash, recent[0].key_hash);
  EXPECT_NE(recent[0].key_hash, 0u);
  // Cache-bypass requests still get a key hash (recorder needs it even
  // though the cache never saw the request).
  EXPECT_FALSE(recent[2].cache_hit);
  EXPECT_NE(recent[2].key_hash, 0u);
  EXPECT_NE(recent[2].key_hash, recent[0].key_hash);
}

TEST(ObsServiceTest, SwapRecordsAnEventInTheInjectedJournal) {
  EventLog events;
  QueryServiceOptions options;
  options.num_workers = 1;
  options.enable_metrics = false;
  options.events = &events;
  std::shared_ptr<const Dataset> initial = Dataset::FromParts(
      MakeGraph({{"a", "knows", "b"}}), std::nullopt);
  std::shared_ptr<const Dataset> next = Dataset::FromParts(
      MakeGraph({{"c", "knows", "d"}}), std::nullopt);
  QueryService service(initial, options);
  ASSERT_TRUE(service.SwapDataset(next).ok());

  bool saw_swap = false;
  for (const LogEvent& event : events.Snapshot()) {
    if (event.component == "service" &&
        event.message.find("dataset swap published") != std::string::npos) {
      saw_swap = true;
    }
  }
  EXPECT_TRUE(saw_swap);
}

// --- Snapshot layer ----------------------------------------------------------

TEST(ObsSnapshotTest, OpenCountsAndMmapBytesGauge) {
  MetricsRegistry* const global = MetricsRegistry::Global();
  Counter* const opens =
      global->GetCounter("omega_snapshot_opens_total", "", "outcome=\"ok\"");
  Gauge* const mapped = global->GetGauge("omega_snapshot_mmap_bytes");
  const uint64_t opens_before = opens->Value();
  const int64_t mapped_before = mapped->Value();

  const std::string path = ::testing::TempDir() + "/obs_metrics.snap";
  const GraphStore graph = MakeGraph({{"a", "r", "b"}, {"b", "r", "c"}});
  ASSERT_TRUE(WriteSnapshot(graph, nullptr, path).ok());
  {
    Result<std::shared_ptr<const Dataset>> dataset =
        SnapshotReader::Open(path);
    ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
    EXPECT_EQ(opens->Value(), opens_before + 1);
    EXPECT_GT(mapped->Value(), mapped_before);
  }
  // Dropping the dataset unmaps the file and returns the gauge.
  EXPECT_EQ(mapped->Value(), mapped_before);
}

// --- Clock discipline --------------------------------------------------------

TEST(ObsTimerTest, TimerIsMonotonic) {
  // The steady-clock contract itself is a static_assert in common/timer.h;
  // this is just the runtime sanity half.
  const Timer timer;
  const double first = timer.ElapsedUs();
  const double second = timer.ElapsedUs();
  EXPECT_GE(first, 0.0);
  EXPECT_GE(second, first);
}

}  // namespace
}  // namespace omega
