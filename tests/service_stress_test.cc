// Concurrency stress test: N client threads fire M mixed queries (exact,
// APPROX, RELAX, multi-conjunct joins) at one QueryService sharing a single
// frozen GraphStore + BoundOntology, and every response's answer multiset
// must match the single-threaded engine reference computed up front. Runs
// both cached and cache-bypassing submissions so repeated queries exercise
// the cache path and fresh evaluations race on the shared store. This is
// the test the ThreadSanitizer CI job exists for: a mutable-cache or
// lazy-init regression in a const read path (like the BoundOntology label
// down-set cache this PR removed) shows up here as a data race.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "rpq/query_parser.h"
#include "service/query_service.h"
#include "snapshot/snapshot_reader.h"
#include "snapshot/snapshot_writer.h"
#include "test_util.h"

namespace omega {
namespace {

struct Fixture {
  GraphStore graph;
  Ontology ontology;
};

/// Career-path-flavoured universe with a property hierarchy (for RELAX),
/// type edges, and enough fan-out that APPROX closures do real work.
Fixture StressFixture() {
  Fixture fx;
  OntologyBuilder ob;
  EXPECT_TRUE(ob.AddSubproperty("worksAt", "affiliatedWith").ok());
  EXPECT_TRUE(ob.AddSubproperty("studiesAt", "affiliatedWith").ok());
  EXPECT_TRUE(ob.AddSubclass("University", "Institution").ok());
  EXPECT_TRUE(ob.AddSubclass("Company", "Institution").ok());
  Result<Ontology> o = std::move(ob).Finalize();
  EXPECT_TRUE(o.ok());
  fx.ontology = std::move(o).value();

  GraphBuilder builder;
  Rng rng(13);
  constexpr size_t kPeople = 60;
  constexpr size_t kOrgs = 12;
  std::vector<std::string> people;
  std::vector<std::string> orgs;
  for (size_t i = 0; i < kPeople; ++i) {
    people.push_back("p" + std::to_string(i));
  }
  for (size_t i = 0; i < kOrgs; ++i) {
    orgs.push_back("o" + std::to_string(i));
    (void)builder.AddEdge(orgs.back(), "type",
                          i % 2 == 0 ? "University" : "Company");
  }
  for (size_t i = 0; i < kPeople; ++i) {
    (void)builder.AddEdge(people[i], "knows",
                          people[rng.NextBounded(kPeople)]);
    (void)builder.AddEdge(people[i], "knows",
                          people[rng.NextBounded(kPeople)]);
    (void)builder.AddEdge(people[i],
                          rng.NextBounded(2) == 0 ? "worksAt" : "studiesAt",
                          orgs[rng.NextBounded(kOrgs)]);
  }
  fx.graph = std::move(builder).Finalize();
  return fx;
}

using omega::testing::CanonAnswers;
using omega::testing::Qy;

TEST(ServiceStressTest, ConcurrentMixedWorkloadMatchesReference) {
  const Fixture fx = StressFixture();

  // Mixed workload: single- and multi-conjunct, all three modes, a
  // constant endpoint, and a shared-variable join. top_k = 0 everywhere so
  // the comparison is over complete answer multisets (a top-k cut could
  // legitimately differ at equal-distance boundaries).
  std::vector<Query> workload;
  for (const char* text : {
           "(?X) <- (?X, knows, ?Y)",
           "(?X, ?Z) <- (?X, knows, ?Y), (?Y, knows, ?Z)",
           "(?X, ?O) <- (?X, knows, ?Y), (?Y, worksAt, ?O)",
           "(?X) <- APPROX (?X, knows.worksAt, ?Y)",
           "(?X) <- APPROX (?X, knows.knows.knows, ?Y)",
           "(?X) <- RELAX (?X, worksAt, ?Y)",
           "(?X) <- RELAX (?X, worksAt.type, ?Y)",
           // A RELAX conjunct traversing a label with no ontology property
           // (knows): under entailment matching this resolves the label's
           // down-set — the exact path where a lazily-inserted const-side
           // cache would race across worker threads.
           "(?X) <- RELAX (?X, knows.worksAt, ?Y)",
           "(?X, ?Y) <- (?X, knows, ?Y), RELAX (?X, studiesAt, ?O)",
           "(?X) <- (o0, type, ?X)",
           "(?X) <- APPROX (?X, worksAt, ?Y), (?X, knows, ?Z)",
       }) {
    workload.push_back(Qy(text));
  }

  // Single-threaded reference, computed before any concurrency exists.
  QueryEngine engine(&fx.graph, &fx.ontology);
  std::vector<std::vector<std::pair<std::vector<NodeId>, Cost>>> reference;
  for (const Query& query : workload) {
    Result<std::vector<QueryAnswer>> answers = engine.ExecuteTopK(query, 0);
    ASSERT_TRUE(answers.ok()) << answers.status().ToString();
    reference.push_back(CanonAnswers(*answers));
    ASSERT_FALSE(reference.back().empty()) << query.ToString();
  }

  QueryServiceOptions options;
  options.num_workers = 4;
  options.max_queue = 256;
  QueryService service(&fx.graph, &fx.ontology, options);

  constexpr size_t kClients = 8;
  constexpr size_t kRequestsPerClient = 30;
  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t r = 0; r < kRequestsPerClient; ++r) {
        const size_t qi = (c * 7 + r * 3) % workload.size();
        QueryRequest request;
        request.query = Clone(workload[qi]);
        request.top_k = 0;
        // Every third request bypasses the cache so fresh evaluations keep
        // racing on the shared store even once everything is cached.
        request.bypass_cache = (c + r) % 3 == 0;
        const QueryResponse response = service.Execute(std::move(request));
        if (!response.status.ok()) {
          ++failures;
          continue;
        }
        if (CanonAnswers(response.answers) != reference[qi]) ++mismatches;
      }
    });
  }
  for (std::thread& client : clients) client.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, kClients * kRequestsPerClient);
  EXPECT_EQ(stats.completed, kClients * kRequestsPerClient);
  EXPECT_GT(stats.cache.hits, 0u);
  // All four classes ran (the workload includes a mixed APPROX+RELAX
  // query via per-conjunct modes only when both appear; here: no mixed).
  EXPECT_GT(stats.per_class[static_cast<size_t>(QueryClass::kExact)].queries,
            0u);
  EXPECT_GT(stats.per_class[static_cast<size_t>(QueryClass::kApprox)].queries,
            0u);
  EXPECT_GT(stats.per_class[static_cast<size_t>(QueryClass::kRelax)].queries,
            0u);
}

TEST(ServiceStressTest, ConcurrentRelaxSharesTheBoundOntologyReadOnly) {
  // Every request re-evaluates (cache disabled) the same RELAX query whose
  // automaton, under entailment matching, resolves the down-set of a label
  // with no ontology property (knows) — the path where BoundOntology once
  // lazily filled a mutable cache behind its const API. All workers resolve
  // it at once; under TSan a reintroduced lazy insert fails here reliably.
  const Fixture fx = StressFixture();
  QueryServiceOptions options;
  options.num_workers = 8;
  options.max_queue = 256;
  options.cache_entries = 0;
  QueryService service(&fx.graph, &fx.ontology, options);

  QueryEngine engine(&fx.graph, &fx.ontology);
  const Query relax = Qy("(?X) <- RELAX (?X, knows.worksAt, ?Y)");
  Result<std::vector<QueryAnswer>> expected = engine.ExecuteTopK(relax, 0);
  ASSERT_TRUE(expected.ok());
  const auto reference = CanonAnswers(*expected);
  ASSERT_FALSE(reference.empty());

  std::atomic<size_t> bad{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < 8; ++c) {
    clients.emplace_back([&] {
      for (size_t r = 0; r < 12; ++r) {
        QueryRequest request;
        request.query = Clone(relax);
        request.top_k = 0;
        const QueryResponse response = service.Execute(std::move(request));
        if (!response.status.ok() ||
            CanonAnswers(response.answers) != reference) {
          ++bad;
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(bad.load(), 0u);
}

/// Builds a StressFixture-shaped universe whose random wiring differs by
/// seed: the same query text yields different answer multisets per variant.
Fixture StressVariant(uint64_t seed) {
  Fixture fx;
  OntologyBuilder ob;
  EXPECT_TRUE(ob.AddSubproperty("worksAt", "affiliatedWith").ok());
  EXPECT_TRUE(ob.AddSubproperty("studiesAt", "affiliatedWith").ok());
  EXPECT_TRUE(ob.AddSubclass("University", "Institution").ok());
  EXPECT_TRUE(ob.AddSubclass("Company", "Institution").ok());
  Result<Ontology> o = std::move(ob).Finalize();
  EXPECT_TRUE(o.ok());
  fx.ontology = std::move(o).value();

  GraphBuilder builder;
  Rng rng(seed);
  // Population sizes depend on the seed so that *every* workload query —
  // including "all ?X with a knows edge" — answers differently per variant;
  // the hammer clients rely on the references being pairwise distinct.
  const size_t kPeople = 40 + seed % 13;
  const size_t kOrgs = 8 + seed % 5;
  std::vector<std::string> people, orgs;
  for (size_t i = 0; i < kPeople; ++i) {
    people.push_back("p" + std::to_string(i));
  }
  for (size_t i = 0; i < kOrgs; ++i) {
    orgs.push_back("o" + std::to_string(i));
    (void)builder.AddEdge(orgs.back(), "type",
                          i % 2 == 0 ? "University" : "Company");
  }
  for (size_t i = 0; i < kPeople; ++i) {
    (void)builder.AddEdge(people[i], "knows",
                          people[rng.NextBounded(kPeople)]);
    (void)builder.AddEdge(people[i], "knows",
                          people[rng.NextBounded(kPeople)]);
    (void)builder.AddEdge(people[i],
                          rng.NextBounded(2) == 0 ? "worksAt" : "studiesAt",
                          orgs[rng.NextBounded(kOrgs)]);
  }
  fx.graph = std::move(builder).Finalize();
  return fx;
}

// Swap-under-load hammer: one thread keeps hot-swapping between two
// datasets (one of them snapshot-backed, so mmap-borrowed arrays are
// exercised under full concurrency) while client threads fire the mixed
// workload and check that every response's answer multiset matches the
// reference of EXACTLY ONE epoch's dataset — and that the response's epoch
// id names that dataset. A torn swap (query seeing half the old and half
// the new substrate), a stale post-swap cache hit, or a use-after-free of
// a retired epoch's mapping would all fail here; under TSan this is also
// the race gate for the epoch publication path.
TEST(ServiceStressTest, SwapUnderLoadServesExactlyOneEpochPerResponse) {
  Fixture variant_a = StressVariant(21);
  Fixture variant_b = StressVariant(77);

  std::vector<Query> workload;
  for (const char* text : {
           "(?X) <- (?X, knows, ?Y)",
           "(?X, ?O) <- (?X, knows, ?Y), (?Y, worksAt, ?O)",
           "(?X) <- APPROX (?X, knows.worksAt, ?Y)",
           "(?X) <- RELAX (?X, worksAt, ?Y)",
           "(?X) <- RELAX (?X, knows.worksAt, ?Y)",
       }) {
    workload.push_back(Qy(text));
  }

  // Per-dataset single-threaded references, computed before any concurrency.
  QueryEngine engine_a(&variant_a.graph, &variant_a.ontology);
  QueryEngine engine_b(&variant_b.graph, &variant_b.ontology);
  std::vector<std::vector<std::pair<std::vector<NodeId>, Cost>>> ref_a, ref_b;
  for (const Query& query : workload) {
    Result<std::vector<QueryAnswer>> a = engine_a.ExecuteTopK(query, 0);
    Result<std::vector<QueryAnswer>> b = engine_b.ExecuteTopK(query, 0);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ref_a.push_back(CanonAnswers(*a));
    ref_b.push_back(CanonAnswers(*b));
    // The hammer can only detect cross-epoch mixing if the two datasets
    // disagree on every workload query.
    ASSERT_NE(ref_a.back(), ref_b.back()) << query.ToString();
  }

  // Dataset B travels through the binary snapshot engine; dataset A is the
  // in-memory build the service starts on.
  const std::string path = ::testing::TempDir() + "/stress_variant_b.snap";
  ASSERT_TRUE(WriteSnapshot(variant_b.graph, &variant_b.ontology, path).ok());
  Result<std::shared_ptr<const Dataset>> mapped_b = SnapshotReader::Open(path);
  ASSERT_TRUE(mapped_b.ok()) << mapped_b.status().ToString();
  std::shared_ptr<const Dataset> dataset_a = Dataset::FromParts(
      std::move(variant_a.graph), std::move(variant_a.ontology));

  QueryServiceOptions options;
  options.num_workers = 4;
  options.max_queue = 256;
  QueryService service(dataset_a, options);

  constexpr size_t kClients = 6;
  constexpr size_t kRequestsPerClient = 25;
  constexpr size_t kSwaps = 40;
  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> failures{0};
  std::atomic<size_t> swap_failures{0};
  std::atomic<size_t> epoch_label_mismatches{0};
  std::atomic<size_t> served_a{0}, served_b{0};

  std::thread swapper([&] {
    for (size_t s = 0; s < kSwaps; ++s) {
      if (!service.SwapDataset(s % 2 == 0 ? *mapped_b : dataset_a).ok()) {
        ++swap_failures;
      }
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t r = 0; r < kRequestsPerClient; ++r) {
        const size_t qi = (c * 3 + r) % workload.size();
        QueryRequest request;
        request.query = Clone(workload[qi]);
        request.top_k = 0;
        // A third of the requests bypass the cache so fresh evaluations
        // keep racing the swaps; the rest also exercise per-epoch caches.
        request.bypass_cache = (c + r) % 3 == 0;
        const QueryResponse response = service.Execute(std::move(request));
        if (!response.status.ok()) {
          ++failures;
          continue;
        }
        const auto got = CanonAnswers(response.answers);
        const bool is_a = got == ref_a[qi];
        const bool is_b = got == ref_b[qi];
        if (is_a == is_b) {
          // Matches both (impossible: references differ) or neither — a
          // torn snapshot of the substrate.
          ++mismatches;
          continue;
        }
        // Epoch ids alternate: even = dataset A (epoch 0 = initial A),
        // odd = dataset B.
        const bool epoch_says_b = response.epoch % 2 == 1;
        if (epoch_says_b != is_b) ++epoch_label_mismatches;
        (is_a ? served_a : served_b)++;
      }
    });
  }
  for (std::thread& client : clients) client.join();
  swapper.join();

  EXPECT_EQ(swap_failures.load(), 0u);
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(epoch_label_mismatches.load(), 0u);
  // Both datasets actually served traffic (the swap raced the workload).
  EXPECT_GT(served_a.load(), 0u);
  EXPECT_GT(served_b.load(), 0u);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.dataset_swaps, kSwaps);
  EXPECT_EQ(stats.submitted, kClients * kRequestsPerClient);
}

TEST(ServiceStressTest, ConcurrentCancellationAndDeadlinesStaySane) {
  const Fixture fx = StressFixture();
  QueryServiceOptions options;
  options.num_workers = 3;
  options.max_queue = 16;
  QueryService service(&fx.graph, &fx.ontology, options);

  const Query slow = Qy("(?X) <- APPROX (?X, knows.knows.knows, ?Y)");
  std::atomic<size_t> invalid_status{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < 6; ++c) {
    clients.emplace_back([&, c] {
      for (size_t r = 0; r < 20; ++r) {
        QueryRequest request;
        request.query = Clone(slow);
        request.top_k = 0;
        request.bypass_cache = true;
        if (r % 2 == 0) request.deadline = std::chrono::milliseconds(1);
        Result<std::shared_ptr<QueryTicket>> ticket =
            service.Submit(std::move(request));
        if (!ticket.ok()) {
          // Admission rejection is legitimate under this much pressure.
          if (!ticket.status().IsResourceExhausted()) ++invalid_status;
          continue;
        }
        if (r % 3 == c % 3) (*ticket)->Cancel();
        const Status& status = (*ticket)->Wait().status;
        // Any of these is a sane outcome; anything else is a bug.
        if (!status.ok() && !status.IsCancelled() &&
            !status.IsDeadlineExceeded()) {
          ++invalid_status;
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(invalid_status.load(), 0u);

  // The service remains healthy after the storm.
  QueryRequest request;
  request.query = Qy("(?X) <- (?X, knows, ?Y)");
  request.top_k = 0;
  EXPECT_TRUE(service.Execute(std::move(request)).status.ok());
}

}  // namespace
}  // namespace omega
