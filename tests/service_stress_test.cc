// Concurrency stress test: N client threads fire M mixed queries (exact,
// APPROX, RELAX, multi-conjunct joins) at one QueryService sharing a single
// frozen GraphStore + BoundOntology, and every response's answer multiset
// must match the single-threaded engine reference computed up front. Runs
// both cached and cache-bypassing submissions so repeated queries exercise
// the cache path and fresh evaluations race on the shared store. This is
// the test the ThreadSanitizer CI job exists for: a mutable-cache or
// lazy-init regression in a const read path (like the BoundOntology label
// down-set cache this PR removed) shows up here as a data race.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "rpq/query_parser.h"
#include "service/query_service.h"
#include "test_util.h"

namespace omega {
namespace {

struct Fixture {
  GraphStore graph;
  Ontology ontology;
};

/// Career-path-flavoured universe with a property hierarchy (for RELAX),
/// type edges, and enough fan-out that APPROX closures do real work.
Fixture StressFixture() {
  Fixture fx;
  OntologyBuilder ob;
  EXPECT_TRUE(ob.AddSubproperty("worksAt", "affiliatedWith").ok());
  EXPECT_TRUE(ob.AddSubproperty("studiesAt", "affiliatedWith").ok());
  EXPECT_TRUE(ob.AddSubclass("University", "Institution").ok());
  EXPECT_TRUE(ob.AddSubclass("Company", "Institution").ok());
  Result<Ontology> o = std::move(ob).Finalize();
  EXPECT_TRUE(o.ok());
  fx.ontology = std::move(o).value();

  GraphBuilder builder;
  Rng rng(13);
  constexpr size_t kPeople = 60;
  constexpr size_t kOrgs = 12;
  std::vector<std::string> people;
  std::vector<std::string> orgs;
  for (size_t i = 0; i < kPeople; ++i) {
    people.push_back("p" + std::to_string(i));
  }
  for (size_t i = 0; i < kOrgs; ++i) {
    orgs.push_back("o" + std::to_string(i));
    (void)builder.AddEdge(orgs.back(), "type",
                          i % 2 == 0 ? "University" : "Company");
  }
  for (size_t i = 0; i < kPeople; ++i) {
    (void)builder.AddEdge(people[i], "knows",
                          people[rng.NextBounded(kPeople)]);
    (void)builder.AddEdge(people[i], "knows",
                          people[rng.NextBounded(kPeople)]);
    (void)builder.AddEdge(people[i],
                          rng.NextBounded(2) == 0 ? "worksAt" : "studiesAt",
                          orgs[rng.NextBounded(kOrgs)]);
  }
  fx.graph = std::move(builder).Finalize();
  return fx;
}

using omega::testing::CanonAnswers;
using omega::testing::Qy;

TEST(ServiceStressTest, ConcurrentMixedWorkloadMatchesReference) {
  const Fixture fx = StressFixture();

  // Mixed workload: single- and multi-conjunct, all three modes, a
  // constant endpoint, and a shared-variable join. top_k = 0 everywhere so
  // the comparison is over complete answer multisets (a top-k cut could
  // legitimately differ at equal-distance boundaries).
  std::vector<Query> workload;
  for (const char* text : {
           "(?X) <- (?X, knows, ?Y)",
           "(?X, ?Z) <- (?X, knows, ?Y), (?Y, knows, ?Z)",
           "(?X, ?O) <- (?X, knows, ?Y), (?Y, worksAt, ?O)",
           "(?X) <- APPROX (?X, knows.worksAt, ?Y)",
           "(?X) <- APPROX (?X, knows.knows.knows, ?Y)",
           "(?X) <- RELAX (?X, worksAt, ?Y)",
           "(?X) <- RELAX (?X, worksAt.type, ?Y)",
           // A RELAX conjunct traversing a label with no ontology property
           // (knows): under entailment matching this resolves the label's
           // down-set — the exact path where a lazily-inserted const-side
           // cache would race across worker threads.
           "(?X) <- RELAX (?X, knows.worksAt, ?Y)",
           "(?X, ?Y) <- (?X, knows, ?Y), RELAX (?X, studiesAt, ?O)",
           "(?X) <- (o0, type, ?X)",
           "(?X) <- APPROX (?X, worksAt, ?Y), (?X, knows, ?Z)",
       }) {
    workload.push_back(Qy(text));
  }

  // Single-threaded reference, computed before any concurrency exists.
  QueryEngine engine(&fx.graph, &fx.ontology);
  std::vector<std::vector<std::pair<std::vector<NodeId>, Cost>>> reference;
  for (const Query& query : workload) {
    Result<std::vector<QueryAnswer>> answers = engine.ExecuteTopK(query, 0);
    ASSERT_TRUE(answers.ok()) << answers.status().ToString();
    reference.push_back(CanonAnswers(*answers));
    ASSERT_FALSE(reference.back().empty()) << query.ToString();
  }

  QueryServiceOptions options;
  options.num_workers = 4;
  options.max_queue = 256;
  QueryService service(&fx.graph, &fx.ontology, options);

  constexpr size_t kClients = 8;
  constexpr size_t kRequestsPerClient = 30;
  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t r = 0; r < kRequestsPerClient; ++r) {
        const size_t qi = (c * 7 + r * 3) % workload.size();
        QueryRequest request;
        request.query = Clone(workload[qi]);
        request.top_k = 0;
        // Every third request bypasses the cache so fresh evaluations keep
        // racing on the shared store even once everything is cached.
        request.bypass_cache = (c + r) % 3 == 0;
        const QueryResponse response = service.Execute(std::move(request));
        if (!response.status.ok()) {
          ++failures;
          continue;
        }
        if (CanonAnswers(response.answers) != reference[qi]) ++mismatches;
      }
    });
  }
  for (std::thread& client : clients) client.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, kClients * kRequestsPerClient);
  EXPECT_EQ(stats.completed, kClients * kRequestsPerClient);
  EXPECT_GT(stats.cache.hits, 0u);
  // All four classes ran (the workload includes a mixed APPROX+RELAX
  // query via per-conjunct modes only when both appear; here: no mixed).
  EXPECT_GT(stats.per_class[static_cast<size_t>(QueryClass::kExact)].queries,
            0u);
  EXPECT_GT(stats.per_class[static_cast<size_t>(QueryClass::kApprox)].queries,
            0u);
  EXPECT_GT(stats.per_class[static_cast<size_t>(QueryClass::kRelax)].queries,
            0u);
}

TEST(ServiceStressTest, ConcurrentRelaxSharesTheBoundOntologyReadOnly) {
  // Every request re-evaluates (cache disabled) the same RELAX query whose
  // automaton, under entailment matching, resolves the down-set of a label
  // with no ontology property (knows) — the path where BoundOntology once
  // lazily filled a mutable cache behind its const API. All workers resolve
  // it at once; under TSan a reintroduced lazy insert fails here reliably.
  const Fixture fx = StressFixture();
  QueryServiceOptions options;
  options.num_workers = 8;
  options.max_queue = 256;
  options.cache_entries = 0;
  QueryService service(&fx.graph, &fx.ontology, options);

  QueryEngine engine(&fx.graph, &fx.ontology);
  const Query relax = Qy("(?X) <- RELAX (?X, knows.worksAt, ?Y)");
  Result<std::vector<QueryAnswer>> expected = engine.ExecuteTopK(relax, 0);
  ASSERT_TRUE(expected.ok());
  const auto reference = CanonAnswers(*expected);
  ASSERT_FALSE(reference.empty());

  std::atomic<size_t> bad{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < 8; ++c) {
    clients.emplace_back([&] {
      for (size_t r = 0; r < 12; ++r) {
        QueryRequest request;
        request.query = Clone(relax);
        request.top_k = 0;
        const QueryResponse response = service.Execute(std::move(request));
        if (!response.status.ok() ||
            CanonAnswers(response.answers) != reference) {
          ++bad;
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(bad.load(), 0u);
}

TEST(ServiceStressTest, ConcurrentCancellationAndDeadlinesStaySane) {
  const Fixture fx = StressFixture();
  QueryServiceOptions options;
  options.num_workers = 3;
  options.max_queue = 16;
  QueryService service(&fx.graph, &fx.ontology, options);

  const Query slow = Qy("(?X) <- APPROX (?X, knows.knows.knows, ?Y)");
  std::atomic<size_t> invalid_status{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < 6; ++c) {
    clients.emplace_back([&, c] {
      for (size_t r = 0; r < 20; ++r) {
        QueryRequest request;
        request.query = Clone(slow);
        request.top_k = 0;
        request.bypass_cache = true;
        if (r % 2 == 0) request.deadline = std::chrono::milliseconds(1);
        Result<std::shared_ptr<QueryTicket>> ticket =
            service.Submit(std::move(request));
        if (!ticket.ok()) {
          // Admission rejection is legitimate under this much pressure.
          if (!ticket.status().IsResourceExhausted()) ++invalid_status;
          continue;
        }
        if (r % 3 == c % 3) (*ticket)->Cancel();
        const Status& status = (*ticket)->Wait().status;
        // Any of these is a sane outcome; anything else is a bug.
        if (!status.ok() && !status.IsCancelled() &&
            !status.IsDeadlineExceeded()) {
          ++invalid_status;
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(invalid_status.load(), 0u);

  // The service remains healthy after the storm.
  QueryRequest request;
  request.query = Qy("(?X) <- (?X, knows, ?Y)");
  request.top_k = 0;
  EXPECT_TRUE(service.Execute(std::move(request)).status.ok());
}

}  // namespace
}  // namespace omega
