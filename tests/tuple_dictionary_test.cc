#include "eval/tuple_dictionary.h"

#include <gtest/gtest.h>

namespace omega {
namespace {

EvalTuple T(NodeId v, Cost d, bool is_final) {
  return EvalTuple{v, v, 0, d, is_final};
}

TEST(TupleDictionaryTest, EmptyInitially) {
  TupleDictionary dict;
  EXPECT_TRUE(dict.Empty());
  EXPECT_EQ(dict.size(), 0u);
}

TEST(TupleDictionaryTest, RemovesLowestDistanceFirst) {
  TupleDictionary dict;
  dict.Add(T(1, 5, false));
  dict.Add(T(2, 0, false));
  dict.Add(T(3, 2, false));
  EXPECT_EQ(dict.MinDistance(), 0);
  EXPECT_EQ(dict.Remove().v, 2u);
  EXPECT_EQ(dict.Remove().v, 3u);
  EXPECT_EQ(dict.Remove().v, 1u);
  EXPECT_TRUE(dict.Empty());
}

TEST(TupleDictionaryTest, FinalTuplesPoppedBeforeNonFinalAtSameDistance) {
  TupleDictionary dict(/*prioritize_final=*/true);
  dict.Add(T(1, 1, false));
  dict.Add(T(2, 1, true));
  dict.Add(T(3, 1, false));
  dict.Add(T(4, 1, true));
  EXPECT_TRUE(dict.Remove().is_final);
  EXPECT_TRUE(dict.Remove().is_final);
  EXPECT_FALSE(dict.Remove().is_final);
  EXPECT_FALSE(dict.Remove().is_final);
}

TEST(TupleDictionaryTest, LifoWithinAList) {
  TupleDictionary dict;
  dict.Add(T(1, 0, false));
  dict.Add(T(2, 0, false));
  dict.Add(T(3, 0, false));
  // "Tuples are always added to, and removed from, the head of a linked
  // list" — last in, first out.
  EXPECT_EQ(dict.Remove().v, 3u);
  EXPECT_EQ(dict.Remove().v, 2u);
  EXPECT_EQ(dict.Remove().v, 1u);
}

TEST(TupleDictionaryTest, AblationModeIgnoresFinalFlag) {
  TupleDictionary dict(/*prioritize_final=*/false);
  dict.Add(T(1, 1, false));
  dict.Add(T(2, 1, true));
  // Single list, LIFO: the final tuple comes out first because it was added
  // last, not because of prioritisation.
  EXPECT_EQ(dict.Remove().v, 2u);
  EXPECT_EQ(dict.Remove().v, 1u);
}

TEST(TupleDictionaryTest, DistanceBucketsDrainCompletelyBeforeNext) {
  TupleDictionary dict;
  for (int i = 0; i < 5; ++i) dict.Add(T(static_cast<NodeId>(i), 2, i % 2));
  for (int i = 0; i < 3; ++i)
    dict.Add(T(static_cast<NodeId>(10 + i), 7, false));
  for (int i = 0; i < 5; ++i) EXPECT_EQ(dict.Remove().d, 2);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(dict.Remove().d, 7);
}

TEST(TupleDictionaryTest, ClearEmpties) {
  TupleDictionary dict;
  dict.Add(T(1, 0, false));
  dict.Add(T(2, 3, true));
  dict.Clear();
  EXPECT_TRUE(dict.Empty());
  EXPECT_EQ(dict.size(), 0u);
}

TEST(TupleDictionaryTest, SizeTracksAddsAndRemoves) {
  TupleDictionary dict;
  for (int i = 0; i < 10; ++i) dict.Add(T(static_cast<NodeId>(i), i % 3, false));
  EXPECT_EQ(dict.size(), 10u);
  for (int i = 0; i < 4; ++i) dict.Remove();
  EXPECT_EQ(dict.size(), 6u);
}

TEST(TupleDictionaryTest, MinDistanceTracksFront) {
  TupleDictionary dict;
  dict.Add(T(1, 4, false));
  EXPECT_EQ(dict.MinDistance(), 4);
  dict.Add(T(2, 1, false));
  EXPECT_EQ(dict.MinDistance(), 1);
  dict.Remove();
  EXPECT_EQ(dict.MinDistance(), 4);
}

}  // namespace
}  // namespace omega
