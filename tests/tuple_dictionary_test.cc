#include "eval/tuple_dictionary.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "eval/tuple_dictionary_reference.h"

namespace omega {
namespace {

EvalTuple T(NodeId v, Cost d, bool is_final) {
  return EvalTuple{v, v, 0, d, is_final};
}

void ExpectSameTuple(const EvalTuple& got, const EvalTuple& want) {
  EXPECT_EQ(got.v, want.v);
  EXPECT_EQ(got.n, want.n);
  EXPECT_EQ(got.s, want.s);
  EXPECT_EQ(got.d, want.d);
  EXPECT_EQ(got.is_final, want.is_final);
}

TEST(TupleDictionaryTest, EmptyInitially) {
  TupleDictionary dict;
  EXPECT_TRUE(dict.Empty());
  EXPECT_EQ(dict.size(), 0u);
}

TEST(TupleDictionaryTest, RemovesLowestDistanceFirst) {
  TupleDictionary dict;
  dict.Add(T(1, 5, false));
  dict.Add(T(2, 0, false));
  dict.Add(T(3, 2, false));
  EXPECT_EQ(dict.MinDistance(), 0);
  EXPECT_EQ(dict.Remove().v, 2u);
  EXPECT_EQ(dict.Remove().v, 3u);
  EXPECT_EQ(dict.Remove().v, 1u);
  EXPECT_TRUE(dict.Empty());
}

TEST(TupleDictionaryTest, FinalTuplesPoppedBeforeNonFinalAtSameDistance) {
  TupleDictionary dict(/*prioritize_final=*/true);
  dict.Add(T(1, 1, false));
  dict.Add(T(2, 1, true));
  dict.Add(T(3, 1, false));
  dict.Add(T(4, 1, true));
  EXPECT_TRUE(dict.Remove().is_final);
  EXPECT_TRUE(dict.Remove().is_final);
  EXPECT_FALSE(dict.Remove().is_final);
  EXPECT_FALSE(dict.Remove().is_final);
}

TEST(TupleDictionaryTest, LifoWithinAList) {
  TupleDictionary dict;
  dict.Add(T(1, 0, false));
  dict.Add(T(2, 0, false));
  dict.Add(T(3, 0, false));
  // "Tuples are always added to, and removed from, the head of a linked
  // list" — last in, first out.
  EXPECT_EQ(dict.Remove().v, 3u);
  EXPECT_EQ(dict.Remove().v, 2u);
  EXPECT_EQ(dict.Remove().v, 1u);
}

TEST(TupleDictionaryTest, AblationModeIgnoresFinalFlag) {
  TupleDictionary dict(/*prioritize_final=*/false);
  dict.Add(T(1, 1, false));
  dict.Add(T(2, 1, true));
  // Single list, LIFO: the final tuple comes out first because it was added
  // last, not because of prioritisation.
  EXPECT_EQ(dict.Remove().v, 2u);
  EXPECT_EQ(dict.Remove().v, 1u);
}

TEST(TupleDictionaryTest, DistanceBucketsDrainCompletelyBeforeNext) {
  TupleDictionary dict;
  for (int i = 0; i < 5; ++i) dict.Add(T(static_cast<NodeId>(i), 2, i % 2));
  for (int i = 0; i < 3; ++i)
    dict.Add(T(static_cast<NodeId>(10 + i), 7, false));
  for (int i = 0; i < 5; ++i) EXPECT_EQ(dict.Remove().d, 2);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(dict.Remove().d, 7);
}

TEST(TupleDictionaryTest, ClearEmpties) {
  TupleDictionary dict;
  dict.Add(T(1, 0, false));
  dict.Add(T(2, 3, true));
  dict.Clear();
  EXPECT_TRUE(dict.Empty());
  EXPECT_EQ(dict.size(), 0u);
}

TEST(TupleDictionaryTest, SizeTracksAddsAndRemoves) {
  TupleDictionary dict;
  for (int i = 0; i < 10; ++i) dict.Add(T(static_cast<NodeId>(i), i % 3, false));
  EXPECT_EQ(dict.size(), 10u);
  for (int i = 0; i < 4; ++i) dict.Remove();
  EXPECT_EQ(dict.size(), 6u);
}

TEST(TupleDictionaryTest, MinDistanceTracksFront) {
  TupleDictionary dict;
  dict.Add(T(1, 4, false));
  EXPECT_EQ(dict.MinDistance(), 4);
  dict.Add(T(2, 1, false));
  EXPECT_EQ(dict.MinDistance(), 1);
  dict.Remove();
  EXPECT_EQ(dict.MinDistance(), 4);
}

TEST(TupleDictionaryTest, DistancesBeyondDenseWindow) {
  // Exercises the overflow map + rebase path: costs far apart force the
  // bucket queue to re-anchor its dense window mid-drain.
  TupleDictionary dict;
  dict.Add(T(1, 1000000, false));
  dict.Add(T(2, 0, false));
  dict.Add(T(3, 500000, true));
  dict.Add(T(4, 1000000, true));
  EXPECT_EQ(dict.MinDistance(), 0);
  EXPECT_EQ(dict.Remove().v, 2u);
  EXPECT_EQ(dict.MinDistance(), 500000);
  EXPECT_EQ(dict.Remove().v, 3u);
  EXPECT_EQ(dict.Remove().v, 4u);  // final before non-final at 1000000
  EXPECT_EQ(dict.Remove().v, 1u);
  EXPECT_TRUE(dict.Empty());
}

TEST(TupleDictionaryTest, NonMonotoneAddAfterRebaseStaysOrdered) {
  // After the queue re-anchors at a high distance, a later add below the
  // new base (impossible from GetNext, but allowed by the API) must still
  // come out first.
  TupleDictionary dict;
  dict.Add(T(1, 100000, false));
  EXPECT_EQ(dict.Remove().v, 1u);  // re-anchors the window at 100000
  dict.Add(T(2, 100001, false));
  dict.Add(T(3, 7, false));
  EXPECT_EQ(dict.MinDistance(), 7);
  EXPECT_EQ(dict.Remove().v, 3u);
  EXPECT_EQ(dict.Remove().v, 2u);
}

// The seed's std::map implementation is the executable spec of the §3.3
// removal discipline; the bucket queue must match it tuple-for-tuple over
// random add/remove sweeps in every regime it can encounter.
void RunParitySweep(uint64_t seed, bool prioritize_final, Cost max_cost,
                    bool monotone, int ops) {
  Rng rng(seed);
  TupleDictionary dict(prioritize_final);
  ReferenceTupleDictionary reference(prioritize_final);
  Cost floor = 0;  // last removed distance, for monotone sweeps
  uint32_t next_id = 0;
  for (int op = 0; op < ops; ++op) {
    const bool do_add = dict.Empty() || rng.NextBool(0.6);
    if (do_add) {
      const Cost lo = monotone ? floor : 0;
      const Cost d =
          static_cast<Cost>(rng.NextInRange(lo, lo + max_cost));
      const EvalTuple t{next_id, next_id + 1, next_id + 2, d,
                        rng.NextBool(0.3)};
      ++next_id;
      dict.Add(t);
      reference.Add(t);
    } else {
      ASSERT_EQ(dict.size(), reference.size());
      ASSERT_EQ(dict.MinDistance(), reference.MinDistance());
      const EvalTuple got = dict.Remove();
      const EvalTuple want = reference.Remove();
      ExpectSameTuple(got, want);
      floor = want.d;
    }
  }
  // Drain both completely; order must stay identical to the end.
  ASSERT_EQ(dict.size(), reference.size());
  while (!reference.Empty()) {
    ASSERT_FALSE(dict.Empty());
    ExpectSameTuple(dict.Remove(), reference.Remove());
  }
  EXPECT_TRUE(dict.Empty());
}

TEST(TupleDictionaryPropertyTest, MatchesReferenceSmallCosts) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    RunParitySweep(seed, /*prioritize_final=*/true, /*max_cost=*/5,
                   /*monotone=*/true, /*ops=*/4000);
  }
}

TEST(TupleDictionaryPropertyTest, MatchesReferenceAblationMode) {
  for (uint64_t seed = 100; seed < 110; ++seed) {
    RunParitySweep(seed, /*prioritize_final=*/false, /*max_cost=*/5,
                   /*monotone=*/true, /*ops=*/4000);
  }
}

TEST(TupleDictionaryPropertyTest, MatchesReferenceSparseCosts) {
  // Costs routinely exceed the dense window, forcing overflow traffic.
  for (uint64_t seed = 200; seed < 210; ++seed) {
    RunParitySweep(seed, /*prioritize_final=*/true, /*max_cost=*/100000,
                   /*monotone=*/true, /*ops=*/2000);
  }
}

TEST(TupleDictionaryPropertyTest, MatchesReferenceNonMonotoneCosts) {
  // Adds are unconstrained: distances may drop below anything already
  // removed, covering the rebase-below-base path.
  for (uint64_t seed = 300; seed < 310; ++seed) {
    RunParitySweep(seed, /*prioritize_final=*/true, /*max_cost=*/50000,
                   /*monotone=*/false, /*ops=*/2000);
  }
}

#ifndef NDEBUG
TEST(TupleDictionaryDeathTest, MinDistanceOnEmptyDies) {
  TupleDictionary dict;
  EXPECT_DEATH_IF_SUPPORTED(dict.MinDistance(), "empty TupleDictionary");
}

TEST(TupleDictionaryDeathTest, RemoveOnEmptyDies) {
  TupleDictionary dict;
  EXPECT_DEATH_IF_SUPPORTED(dict.Remove(), "empty TupleDictionary");
}

TEST(TupleDictionaryDeathTest, RemoveAfterDrainDies) {
  TupleDictionary dict;
  dict.Add(T(1, 2, false));
  dict.Remove();
  EXPECT_DEATH_IF_SUPPORTED(dict.Remove(), "empty TupleDictionary");
}
#endif  // NDEBUG

}  // namespace
}  // namespace omega
