#include "store/bitmap.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"

namespace omega {
namespace {

TEST(BitmapTest, SetTestClear) {
  Bitmap b(130);
  EXPECT_FALSE(b.Test(0));
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(63));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(65));
  b.Clear(63);
  EXPECT_FALSE(b.Test(63));
  EXPECT_EQ(b.Count(), 3u);
}

TEST(BitmapTest, TestOutOfUniverseIsFalse) {
  Bitmap b(10);
  EXPECT_FALSE(b.Test(10));
  EXPECT_FALSE(b.Test(1000));
}

TEST(BitmapTest, TestAndSet) {
  Bitmap b(8);
  EXPECT_TRUE(b.TestAndSet(3));
  EXPECT_FALSE(b.TestAndSet(3));
  EXPECT_EQ(b.Count(), 1u);
}

TEST(BitmapTest, ForEachAscending) {
  Bitmap b(200);
  for (NodeId id : {7u, 64u, 65u, 199u}) b.Set(id);
  std::vector<NodeId> seen;
  b.ForEach([&](NodeId id) { seen.push_back(id); });
  EXPECT_EQ(seen, (std::vector<NodeId>{7, 64, 65, 199}));
  EXPECT_EQ(b.ToVector(), seen);
}

TEST(BitmapTest, ClearAllAndResize) {
  Bitmap b(100);
  b.Set(50);
  b.ClearAll();
  EXPECT_EQ(b.Count(), 0u);
  b.Resize(10);
  EXPECT_EQ(b.universe_size(), 10u);
  EXPECT_EQ(b.Count(), 0u);
}

TEST(BitmapTest, AlgebraMatchesReference) {
  Rng rng(17);
  constexpr size_t kUniverse = 257;
  Bitmap a(kUniverse), b(kUniverse);
  std::set<NodeId> ra, rb;
  for (int i = 0; i < 120; ++i) {
    NodeId x = static_cast<NodeId>(rng.NextBounded(kUniverse));
    NodeId y = static_cast<NodeId>(rng.NextBounded(kUniverse));
    a.Set(x);
    ra.insert(x);
    b.Set(y);
    rb.insert(y);
  }

  Bitmap u = a;
  u.UnionWith(b);
  Bitmap i = a;
  i.IntersectWith(b);
  Bitmap d = a;
  d.SubtractFrom(b);

  for (NodeId x = 0; x < kUniverse; ++x) {
    EXPECT_EQ(u.Test(x), ra.count(x) || rb.count(x));
    EXPECT_EQ(i.Test(x), ra.count(x) && rb.count(x));
    EXPECT_EQ(d.Test(x), ra.count(x) && !rb.count(x));
  }
}

}  // namespace
}  // namespace omega
