// Unit tests for the cost-based planning layer: GraphStore label statistics,
// the NFA-level conjunct estimator, greedy bushy / left-deep plan
// construction, plan compilation to streams, and the EXPLAIN rendering —
// plus engine-level checks that Execute actually runs the planned shape and
// that zero-answer queries short-circuit.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "eval/query_engine.h"
#include "plan/plan_node.h"
#include "plan/planner.h"
#include "plan/statistics.h"
#include "rpq/query_parser.h"
#include "test_util.h"

namespace omega {
namespace {

using testing::Cj;
using testing::MakeGraph;

PreparedConjunct Prepare(const std::string& text, const GraphStore& graph) {
  Result<PreparedConjunct> p =
      PrepareConjunct(Cj(text), graph, nullptr, EvaluatorOptions{});
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return std::move(p).value();
}

TEST(LabelStatsTest, ExposesCsrCardinalities) {
  // a: two tails (x, y), two heads (y, z), three edges; b: one of each.
  GraphStore g = MakeGraph({{"x", "a", "y"},
                            {"x", "a", "z"},
                            {"y", "a", "z"},
                            {"p", "b", "q"}});
  const LabelId a = *g.labels().Find("a");
  const LabelStats stats = g.StatsForLabel(a);
  EXPECT_EQ(stats.edge_count, 3u);
  EXPECT_EQ(stats.num_tails, 2u);
  EXPECT_EQ(stats.num_heads, 2u);
  EXPECT_DOUBLE_EQ(stats.AvgOutDegree(), 1.5);
  EXPECT_DOUBLE_EQ(stats.AvgInDegree(), 1.5);

  const LabelStats sigma = g.SigmaStats();
  EXPECT_EQ(sigma.edge_count, 4u);
  EXPECT_EQ(sigma.num_tails, 3u);  // x, y, p

  const LabelStats none = g.StatsForLabel(kInvalidLabel);
  EXPECT_EQ(none.edge_count, 0u);
  EXPECT_DOUBLE_EQ(none.AvgOutDegree(), 0.0);
}

TEST(EstimateConjunctTest, VariableEndpointsCountLabelCandidates) {
  GraphStore g = MakeGraph({{"x", "a", "y"},
                            {"x", "a", "z"},
                            {"y", "a", "z"},
                            {"p", "b", "q"}});
  const ConjunctEstimate est =
      EstimateConjunct(Prepare("(?X, a, ?Y)", g), g);
  EXPECT_DOUBLE_EQ(est.sources, 2.0);  // |Tails(a)|
  EXPECT_DOUBLE_EQ(est.targets, 2.0);  // |Heads(a)|
  EXPECT_FALSE(est.provably_empty);
  EXPECT_GT(est.cardinality, 0.0);
  EXPECT_GT(est.selectivity, 0.0);
  EXPECT_LE(est.selectivity, 1.0);
}

TEST(EstimateConjunctTest, ConstantEndpointsAreNearOneSelectivity) {
  GraphStore g = MakeGraph({{"x", "a", "y"}, {"y", "a", "z"}});
  const ConjunctEstimate from_const =
      EstimateConjunct(Prepare("(x, a, ?Y)", g), g);
  EXPECT_DOUBLE_EQ(from_const.sources, 1.0);
  EXPECT_LT(from_const.cardinality, 2.0);

  // Both endpoints constant: a 0-or-1-row filter.
  const ConjunctEstimate filter =
      EstimateConjunct(Prepare("(x, a, y)", g), g);
  EXPECT_DOUBLE_EQ(filter.sources, 1.0);
  EXPECT_DOUBLE_EQ(filter.targets, 1.0);
  EXPECT_LT(filter.cardinality, 1.0);
}

TEST(EstimateConjunctTest, AbsentConstantOrLabelIsProvablyEmpty) {
  GraphStore g = MakeGraph({{"x", "a", "y"}});
  EXPECT_TRUE(EstimateConjunct(Prepare("(ghost, a, ?Y)", g), g)
                  .provably_empty);
  EXPECT_TRUE(EstimateConjunct(Prepare("(?X, nolabel, ?Y)", g), g)
                  .provably_empty);
  EXPECT_FALSE(EstimateConjunct(Prepare("(x, a, ?Y)", g), g).provably_empty);
}

TEST(EstimateConjunctTest, EmptyPathRegexScalesToAllNodes) {
  GraphStore g = MakeGraph({{"x", "a", "y"}, {"y", "a", "z"}, {"p", "a", "q"}});
  // a* accepts the empty path: every node is its own answer at distance 0.
  const ConjunctEstimate est =
      EstimateConjunct(Prepare("(?X, a*, ?Y)", g), g);
  EXPECT_DOUBLE_EQ(est.sources, static_cast<double>(g.NumNodes()));
  EXPECT_DOUBLE_EQ(est.targets, static_cast<double>(g.NumNodes()));
  EXPECT_DOUBLE_EQ(est.cardinality, static_cast<double>(g.NumNodes()));
}

// --- planner -----------------------------------------------------------------

PlanLeaf Leaf(size_t index, std::vector<VarId> vars, double cardinality) {
  PlanLeaf leaf;
  leaf.conjunct_index = index;
  leaf.description = "#" + std::to_string(index);
  leaf.variables = std::move(vars);
  leaf.estimate.cardinality = cardinality;
  leaf.estimate.selectivity = cardinality;
  return leaf;
}

std::vector<PlanLeaf> ChainLeaves() {
  // (?V0, R0, ?V1) huge, (?V1, R1, ?V2) medium, (?V2, R2, const) selective.
  std::vector<PlanLeaf> leaves;
  leaves.push_back(Leaf(0, {0, 1}, 1000));
  leaves.push_back(Leaf(1, {1, 2}, 100));
  leaves.push_back(Leaf(2, {2}, 1));
  return leaves;
}

TEST(PlannerTest, GreedyJoinsMostSelectivePairFirst) {
  std::unique_ptr<PlanNode> root = PlanGreedyBushy(ChainLeaves(), 100);
  ASSERT_FALSE(root->is_leaf());
  // Expected shape: ((#2 |><| #1) |><| #0), the selective constant conjunct
  // deepest and leftmost.
  ASSERT_FALSE(root->left->is_leaf());
  EXPECT_EQ(root->left->left->conjunct_index, 2u);
  EXPECT_EQ(root->left->right->conjunct_index, 1u);
  EXPECT_EQ(root->right->conjunct_index, 0u);
  EXPECT_EQ(root->left->join_vars, (std::vector<VarId>{2}));
  EXPECT_EQ(root->join_vars, (std::vector<VarId>{1}));
  EXPECT_EQ(root->variables, (std::vector<VarId>{0, 1, 2}));
}

TEST(PlannerTest, CrossProductsDeferredToLast) {
  // #0 and #1 are tiny but share nothing; #2 connects both. A naive
  // cheapest-pair pick would cross-product #0 x #1 first.
  std::vector<PlanLeaf> leaves;
  leaves.push_back(Leaf(0, {0}, 5));
  leaves.push_back(Leaf(1, {1}, 5));
  leaves.push_back(Leaf(2, {0, 1}, 1000));
  std::unique_ptr<PlanNode> root = PlanGreedyBushy(std::move(leaves), 100);
  // Every join in the tree shares a variable.
  ASSERT_FALSE(root->is_leaf());
  EXPECT_FALSE(root->join_vars.empty());
  const PlanNode& inner = root->left->is_leaf() ? *root->right : *root->left;
  EXPECT_FALSE(inner.join_vars.empty());
}

TEST(PlannerTest, ProvablyEmptyLeafJoinsEarlyEvenWithoutSharedVars) {
  std::vector<PlanLeaf> leaves;
  leaves.push_back(Leaf(0, {0}, 500));
  leaves.push_back(Leaf(1, {1}, 0));  // empty: short-circuits everything
  leaves.push_back(Leaf(2, {0}, 400));
  std::unique_ptr<PlanNode> root = PlanGreedyBushy(std::move(leaves), 100);
  // The empty leaf must not be deferred behind the #0 |><| #2 join.
  const PlanNode* deepest = root.get();
  while (!deepest->is_leaf()) deepest = deepest->left.get();
  EXPECT_EQ(deepest->conjunct_index, 1u);
  EXPECT_DOUBLE_EQ(root->est_cardinality, 0.0);
}

TEST(PlannerTest, LeftDeepFollowsGivenOrder) {
  std::unique_ptr<PlanNode> root =
      PlanLeftDeep(ChainLeaves(), {2, 0, 1}, 100);
  ASSERT_FALSE(root->is_leaf());
  EXPECT_EQ(root->right->conjunct_index, 1u);
  ASSERT_FALSE(root->left->is_leaf());
  EXPECT_EQ(root->left->left->conjunct_index, 2u);
  EXPECT_EQ(root->left->right->conjunct_index, 0u);
}

TEST(PlannerTest, CompilePlanExecutesBushyShape) {
  using testing::ScriptedBindingStream;
  auto row = [](std::vector<std::pair<VarId, NodeId>> vars, Cost d) {
    Binding b(3);
    for (auto& [slot, value] : vars) b.Bind(slot, value);
    b.distance = d;
    return b;
  };
  std::vector<PlanLeaf> leaves;
  leaves.push_back(Leaf(0, {0, 1}, 1000));
  leaves.push_back(Leaf(1, {1, 2}, 100));
  leaves.push_back(Leaf(2, {2}, 1));
  std::unique_ptr<PlanNode> root = PlanGreedyBushy(std::move(leaves), 100);

  std::vector<std::unique_ptr<BindingStream>> streams(3);
  streams[0] = std::make_unique<ScriptedBindingStream>(
      std::vector<VarId>{0, 1},
      std::vector<Binding>{row({{0, 7}, {1, 1}}, 0), row({{0, 8}, {1, 2}}, 1)});
  streams[1] = std::make_unique<ScriptedBindingStream>(
      std::vector<VarId>{1, 2},
      std::vector<Binding>{row({{1, 1}, {2, 5}}, 0), row({{1, 2}, {2, 6}}, 0)});
  streams[2] = std::make_unique<ScriptedBindingStream>(
      std::vector<VarId>{2}, std::vector<Binding>{row({{2, 5}}, 2)});

  std::unique_ptr<BindingStream> stream = CompilePlan(root.get(), &streams, 0);
  EXPECT_EQ(stream->variables(), (std::vector<VarId>{0, 1, 2}));
  Binding out;
  ASSERT_TRUE(stream->Next(&out));
  EXPECT_EQ(out.Get(0), 7u);
  EXPECT_EQ(out.Get(2), 5u);
  EXPECT_EQ(out.distance, 2);
  EXPECT_FALSE(stream->Next(&out));
  EXPECT_TRUE(stream->status().ok());
  // Every plan node observed its compiled operator.
  EXPECT_NE(root->stream, nullptr);
  EXPECT_NE(root->left->stream, nullptr);
  EXPECT_NE(root->left->left->stream, nullptr);
}

TEST(PlannerTest, RenderShowsOperatorsAndEstimates) {
  QueryPlan plan;
  plan.catalog.GetOrAdd("X");
  plan.catalog.GetOrAdd("Y");
  plan.catalog.GetOrAdd("Z");
  std::vector<PlanLeaf> leaves = ChainLeaves();
  leaves[0].description = "(?X, a, ?Y)";
  plan.root = PlanGreedyBushy(std::move(leaves), 100);
  const std::string text = RenderPlanTree(plan, /*with_stats=*/false);
  EXPECT_NE(text.find("RankJoin [?Y]"), std::string::npos) << text;
  EXPECT_NE(text.find("(?X, a, ?Y)"), std::string::npos) << text;
  EXPECT_NE(text.find("est="), std::string::npos) << text;
  EXPECT_NE(text.find("sel="), std::string::npos) << text;
}

// --- engine integration ------------------------------------------------------

/// A graph where textual order is bad: the selective conjunct is last.
GraphStore SkewedGraph() {
  std::vector<std::tuple<std::string, std::string, std::string>> triples;
  for (int i = 0; i < 20; ++i) {
    for (int j = 0; j < 3; ++j) {
      triples.push_back({"s" + std::to_string(i), "a",
                         "h" + std::to_string((i + j) % 4)});
      triples.push_back({"h" + std::to_string((i + j) % 4), "b",
                         "t" + std::to_string(i)});
    }
  }
  triples.push_back({"t0", "rare", "sink"});
  return MakeGraph(triples);
}

TEST(PlannerEngineTest, ExecuteChoosesSelectiveLeafDeepest) {
  GraphStore g = SkewedGraph();
  QueryEngine engine(&g, nullptr);
  Result<Query> q = ParseQuery(
      "(?X, ?Z) <- (?X, a, ?Y), (?Y, b, ?Z), (?Z, rare, sink)");
  ASSERT_TRUE(q.ok());
  auto stream = engine.Execute(*q);
  ASSERT_TRUE(stream.ok());
  const QueryPlan* plan = (*stream)->plan();
  ASSERT_NE(plan, nullptr);
  const PlanNode* deepest = plan->root.get();
  while (!deepest->is_leaf()) deepest = deepest->left.get();
  EXPECT_EQ(deepest->conjunct_index, 2u);

  // The planned tree yields the same answers as the textual reference.
  auto planned = engine.ExecuteTopK(*q, 0);
  QueryEngineOptions textual;
  textual.plan_mode = PlanMode::kTextual;
  auto reference = engine.ExecuteTopK(*q, 0, textual);
  ASSERT_TRUE(planned.ok());
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(planned->size(), reference->size());
}

TEST(PlannerEngineTest, ExplainQueryRendersTreeWithEstimates) {
  GraphStore g = SkewedGraph();
  QueryEngine engine(&g, nullptr);
  Result<Query> q = ParseQuery(
      "(?X, ?Z) <- (?X, a, ?Y), (?Y, b, ?Z), (?Z, rare, sink)");
  ASSERT_TRUE(q.ok());
  Result<std::string> text = engine.ExplainQuery(*q);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("RankJoin"), std::string::npos) << *text;
  EXPECT_NE(text->find("(?Z, rare, sink)"), std::string::npos) << *text;
  EXPECT_NE(text->find("est="), std::string::npos) << *text;

  // After execution, ExplainString adds per-operator counters.
  auto stream = engine.Execute(*q);
  ASSERT_TRUE(stream.ok());
  QueryAnswer a;
  while ((*stream)->Next(&a)) {
  }
  const std::string analyzed = (*stream)->ExplainString();
  EXPECT_NE(analyzed.find("popped="), std::string::npos) << analyzed;
  EXPECT_NE(analyzed.find("live-peak="), std::string::npos) << analyzed;
}

TEST(PlannerEngineTest, ForcedOrderMustBePermutation) {
  GraphStore g = MakeGraph({{"x", "a", "y"}});
  QueryEngine engine(&g, nullptr);
  Result<Query> q = ParseQuery("(?X) <- (?X, a, ?Y), (?Y, a, ?Z)");
  ASSERT_TRUE(q.ok());
  QueryEngineOptions options;
  options.forced_join_order = {0, 0};
  auto stream = engine.Execute(*q, options);
  ASSERT_FALSE(stream.ok());
  EXPECT_EQ(stream.status().code(), StatusCode::kInvalidArgument);
}

TEST(PlannerEngineTest, ZeroAnswerQueryDoesNotDrainSiblings) {
  // "ghost" is not in the graph: conjunct 0 is provably empty. Neither plan
  // mode may pay for the dense sibling conjuncts.
  GraphStore g = SkewedGraph();
  QueryEngine engine(&g, nullptr);
  Result<Query> q = ParseQuery(
      "(?X, ?Y) <- (ghost, rare, ?Y), (?X, a, ?Y), (?X, b, ?Z)");
  ASSERT_TRUE(q.ok());
  for (const PlanMode mode : {PlanMode::kGreedyBushy, PlanMode::kTextual}) {
    QueryEngineOptions options;
    options.plan_mode = mode;
    auto stream = engine.Execute(*q, options);
    ASSERT_TRUE(stream.ok());
    QueryAnswer a;
    EXPECT_FALSE((*stream)->Next(&a));
    EXPECT_TRUE((*stream)->status().ok());
    // A handful of pulls at most — the dense conjuncts stream hundreds of
    // answers when drained.
    EXPECT_LE((*stream)->stats().tuples_popped, 10u)
        << "mode " << static_cast<int>(mode);
  }
}

}  // namespace
}  // namespace omega
