#include "common/flat_hash.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "common/rng.h"

namespace omega {
namespace {

TEST(FlatHashSetTest, EmptyInitially) {
  FlatHashSet<uint64_t> set;
  EXPECT_TRUE(set.Empty());
  EXPECT_EQ(set.size(), 0u);
  EXPECT_FALSE(set.Contains(0));
  EXPECT_FALSE(set.Contains(42));
}

TEST(FlatHashSetTest, InsertReportsNewness) {
  FlatHashSet<uint64_t> set;
  EXPECT_TRUE(set.Insert(7));
  EXPECT_FALSE(set.Insert(7));
  EXPECT_TRUE(set.Insert(8));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.Contains(7));
  EXPECT_TRUE(set.Contains(8));
  EXPECT_FALSE(set.Contains(9));
}

TEST(FlatHashSetTest, ZeroAndMaxKeysAreStorable) {
  // No sentinel key: the full key domain, including 0 and ~0, is usable.
  FlatHashSet<uint64_t> set;
  EXPECT_TRUE(set.Insert(0));
  EXPECT_TRUE(set.Insert(~uint64_t{0}));
  EXPECT_TRUE(set.Contains(0));
  EXPECT_TRUE(set.Contains(~uint64_t{0}));
  EXPECT_FALSE(set.Insert(0));
}

TEST(FlatHashSetTest, GrowsThroughManyRehashes) {
  FlatHashSet<uint64_t> set;
  for (uint64_t i = 0; i < 10000; ++i) EXPECT_TRUE(set.Insert(i * 977));
  EXPECT_EQ(set.size(), 10000u);
  for (uint64_t i = 0; i < 10000; ++i) EXPECT_TRUE(set.Contains(i * 977));
  EXPECT_FALSE(set.Contains(1));
}

TEST(FlatHashSetTest, ClearResets) {
  FlatHashSet<uint64_t> set;
  set.Insert(1);
  set.Insert(2);
  set.Clear();
  EXPECT_TRUE(set.Empty());
  EXPECT_FALSE(set.Contains(1));
  EXPECT_TRUE(set.Insert(1));
}

TEST(FlatHashSetTest, ReserveAvoidsLaterGrowth) {
  FlatHashSet<uint64_t> set;
  set.Reserve(5000);
  for (uint64_t i = 0; i < 5000; ++i) set.Insert(i);
  EXPECT_EQ(set.size(), 5000u);
  for (uint64_t i = 0; i < 5000; ++i) EXPECT_TRUE(set.Contains(i));
}

struct CollidingHash {
  size_t operator()(uint64_t) const { return 17; }  // worst case: one chain
};

TEST(FlatHashSetTest, SurvivesPathologicalHash) {
  FlatHashSet<uint64_t, CollidingHash> set;
  for (uint64_t i = 0; i < 200; ++i) EXPECT_TRUE(set.Insert(i));
  for (uint64_t i = 0; i < 200; ++i) EXPECT_TRUE(set.Contains(i));
  EXPECT_FALSE(set.Contains(200));
}

TEST(FlatHashSetTest, MatchesUnorderedSetUnderRandomOps) {
  Rng rng(1234);
  FlatHashSet<uint64_t> set;
  std::unordered_set<uint64_t> model;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t key = rng.NextBounded(4096);  // force collisions
    EXPECT_EQ(set.Insert(key), model.insert(key).second);
    EXPECT_EQ(set.size(), model.size());
  }
  for (uint64_t key = 0; key < 4096; ++key) {
    EXPECT_EQ(set.Contains(key), model.count(key) > 0);
  }
}

TEST(FlatHashMapTest, InsertIsTryEmplace) {
  FlatHashMap<uint64_t, int> map;
  EXPECT_TRUE(map.Insert(5, 100));
  EXPECT_FALSE(map.Insert(5, 999));  // first value wins
  ASSERT_NE(map.Find(5), nullptr);
  EXPECT_EQ(*map.Find(5), 100);
  EXPECT_EQ(map.Find(6), nullptr);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatHashMapTest, FindOrInsertDefaultConstructsOnce) {
  FlatHashMap<uint64_t, std::vector<int>> map;
  map.FindOrInsert(3).push_back(1);
  map.FindOrInsert(3).push_back(2);  // same group, no reset
  map.FindOrInsert(4);               // empty group still counts as present
  EXPECT_EQ(map.size(), 2u);
  ASSERT_NE(map.Find(3), nullptr);
  EXPECT_EQ(*map.Find(3), (std::vector<int>{1, 2}));
  ASSERT_NE(map.Find(4), nullptr);
  EXPECT_TRUE(map.Find(4)->empty());
}

TEST(FlatHashMapTest, FindOrInsertAfterClearIsFreshlyConstructed) {
  // Clear keeps the slot array; reclaiming a slot must not resurrect the
  // value it held before the Clear.
  FlatHashMap<uint64_t, std::vector<int>> map;
  map.FindOrInsert(3).push_back(7);
  map.Clear();
  EXPECT_TRUE(map.FindOrInsert(3).empty());
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatHashMapTest, FindOrInsertMatchesUnorderedMapUnderRandomOps) {
  Rng rng(99);
  FlatHashMap<uint64_t, std::vector<int>> map;
  std::unordered_map<uint64_t, std::vector<int>> model;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t key = rng.NextBounded(512);  // force growth + collisions
    map.FindOrInsert(key).push_back(i);
    model[key].push_back(i);
  }
  EXPECT_EQ(map.size(), model.size());
  for (const auto& [key, rows] : model) {
    ASSERT_NE(map.Find(key), nullptr);
    EXPECT_EQ(*map.Find(key), rows);
  }
}

TEST(FlatHashMapTest, ContainsAndClear) {
  FlatHashMap<uint64_t, int> map;
  map.Insert(1, 10);
  EXPECT_TRUE(map.Contains(1));
  EXPECT_FALSE(map.Contains(2));
  map.Clear();
  EXPECT_TRUE(map.Empty());
  EXPECT_FALSE(map.Contains(1));
}

TEST(FlatHashMapTest, MatchesUnorderedMapUnderRandomOps) {
  Rng rng(99);
  FlatHashMap<uint64_t, uint64_t> map;
  std::unordered_map<uint64_t, uint64_t> model;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t key = rng.NextBounded(3000);
    const uint64_t value = rng.Next();
    EXPECT_EQ(map.Insert(key, value), model.try_emplace(key, value).second);
  }
  EXPECT_EQ(map.size(), model.size());
  for (const auto& [key, value] : model) {
    ASSERT_NE(map.Find(key), nullptr) << key;
    EXPECT_EQ(*map.Find(key), value);
  }
}

}  // namespace
}  // namespace omega
