// Snapshot storage engine tests: binary round-trip fidelity (identical
// ranked answer multisets over EXACT/APPROX/RELAX between an in-memory
// build and its mmap-backed reopen), structural/checksum rejection of
// corrupt files, and the ConstArray/OidSet borrowed-backend seam the
// zero-copy store rides on.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <type_traits>
#include <vector>

#include "snapshot/snapshot_reader.h"
#include "snapshot/snapshot_writer.h"
#include "store/graph_builder.h"
#include "store/string_table.h"
#include "test_util.h"

namespace omega {
namespace {

using omega::testing::CanonAnswers;
using omega::testing::MakeGraph;
using omega::testing::Qy;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

struct Fixture {
  GraphStore graph;
  Ontology ontology;
};

Fixture SnapshotFixture() {
  Fixture fx;
  OntologyBuilder ob;
  EXPECT_TRUE(ob.AddSubproperty("worksAt", "affiliatedWith").ok());
  EXPECT_TRUE(ob.AddSubproperty("studiesAt", "affiliatedWith").ok());
  EXPECT_TRUE(ob.AddSubclass("University", "Institution").ok());
  EXPECT_TRUE(ob.AddSubclass("Company", "Institution").ok());
  EXPECT_TRUE(ob.SetDomain("worksAt", "Institution").ok());
  Result<Ontology> o = std::move(ob).Finalize();
  EXPECT_TRUE(o.ok());
  fx.ontology = std::move(o).value();

  GraphBuilder builder;
  Rng rng(99);
  constexpr size_t kPeople = 40;
  constexpr size_t kOrgs = 8;
  std::vector<std::string> people, orgs;
  for (size_t i = 0; i < kPeople; ++i) {
    people.push_back("p" + std::to_string(i));
  }
  for (size_t i = 0; i < kOrgs; ++i) {
    orgs.push_back("o" + std::to_string(i));
    (void)builder.AddEdge(orgs.back(), "type",
                          i % 2 == 0 ? "University" : "Company");
  }
  for (size_t i = 0; i < kPeople; ++i) {
    (void)builder.AddEdge(people[i], "knows",
                          people[rng.NextBounded(kPeople)]);
    (void)builder.AddEdge(people[i], "knows",
                          people[rng.NextBounded(kPeople)]);
    (void)builder.AddEdge(people[i],
                          rng.NextBounded(2) == 0 ? "worksAt" : "studiesAt",
                          orgs[rng.NextBounded(kOrgs)]);
  }
  fx.graph = std::move(builder).Finalize();
  return fx;
}

// --- ConstArray / StringTable / borrowed OidSet seam -------------------------

TEST(ConstArrayTest, OwnedAndBorrowedServeTheSameSpan) {
  ConstArray<uint32_t> owned(std::vector<uint32_t>{1, 2, 3});
  EXPECT_EQ(owned.size(), 3u);
  EXPECT_FALSE(owned.borrowed());
  EXPECT_GT(owned.OwnedBytes(), 0u);

  ConstArray<uint32_t> borrowed = ConstArray<uint32_t>::Borrowed(owned.span());
  EXPECT_TRUE(borrowed.borrowed());
  EXPECT_EQ(borrowed.OwnedBytes(), 0u);
  ASSERT_EQ(borrowed.size(), 3u);
  EXPECT_EQ(borrowed[1], 2u);
  EXPECT_EQ(borrowed.data(), owned.data());  // zero-copy

  // Moving the owner keeps the heap buffer (what Finalize relies on).
  ConstArray<uint32_t> moved = std::move(owned);
  EXPECT_EQ(borrowed.data(), moved.data());
}

TEST(StringTableTest, FlattensAndBorrows) {
  const std::vector<std::string> strings = {"type", "", "worksAt"};
  StringTable owned = StringTable::FromStrings(strings);
  ASSERT_EQ(owned.size(), 3u);
  EXPECT_EQ(owned[0], "type");
  EXPECT_EQ(owned[1], "");
  EXPECT_EQ(owned[2], "worksAt");

  StringTable borrowed = StringTable::Borrowed(owned.heap(), owned.offsets());
  ASSERT_EQ(borrowed.size(), 3u);
  EXPECT_EQ(borrowed[2], "worksAt");
  EXPECT_EQ(borrowed[2].data(), owned[2].data());  // zero-copy
}

TEST(OidSetTest, BorrowedSetReadsLikeOwned) {
  const std::vector<NodeId> storage = {2, 5, 9};
  OidSet borrowed = OidSet::BorrowSortedUnique(storage);
  EXPECT_TRUE(borrowed.borrowed());
  EXPECT_EQ(borrowed.size(), 3u);
  EXPECT_TRUE(borrowed.Contains(5));
  EXPECT_FALSE(borrowed.Contains(4));
  EXPECT_EQ(borrowed, (OidSet{2, 5, 9}));  // element-wise across backends

  // Copies are deep: they may outlive the borrowed storage.
  OidSet copy = borrowed;
  EXPECT_FALSE(copy.borrowed());
  EXPECT_EQ(copy, borrowed);

  // The first mutation detaches into an owned vector.
  borrowed.Insert(4);
  EXPECT_FALSE(borrowed.borrowed());
  EXPECT_EQ(borrowed, (OidSet{2, 4, 5, 9}));
  EXPECT_EQ(storage, (std::vector<NodeId>{2, 5, 9}));  // untouched
}

TEST(ConstArrayTest, MoveOnlyWithExplicitClone) {
  // Accidental copies of multi-GB snapshot sections are the failure mode;
  // copying is spelled Clone() and everything else moves, like GraphStore.
  static_assert(!std::is_copy_constructible_v<ConstArray<uint32_t>>);
  static_assert(!std::is_copy_assignable_v<ConstArray<uint32_t>>);
  static_assert(!std::is_copy_constructible_v<StringTable>);
  static_assert(!std::is_copy_assignable_v<StringTable>);

  ConstArray<uint32_t> owned(std::vector<uint32_t>{7, 8});
  ConstArray<uint32_t> clone = owned.Clone();
  ASSERT_EQ(clone.size(), 2u);
  EXPECT_NE(clone.data(), owned.data());  // deep copy
  EXPECT_EQ(clone[0], 7u);

  // Cloning a borrowed array escapes the borrow: the clone owns its
  // elements and may outlive the viewed storage.
  ConstArray<uint32_t> borrowed = ConstArray<uint32_t>::Borrowed(owned.span());
  ConstArray<uint32_t> escaped = borrowed.Clone();
  EXPECT_FALSE(escaped.borrowed());
  EXPECT_NE(escaped.data(), owned.data());
  EXPECT_EQ(escaped[1], 8u);

  // Moved-from arrays reset to empty owned: safe to destroy or refill.
  ConstArray<uint32_t> moved = std::move(owned);
  ASSERT_EQ(moved.size(), 2u);
  EXPECT_EQ(owned.size(), 0u);
  EXPECT_FALSE(owned.borrowed());
}

#ifndef NDEBUG
TEST(ConstArrayDeathTest, OutOfBoundsIndexDies) {
  ConstArray<uint32_t> arr(std::vector<uint32_t>{1});
  EXPECT_DEATH_IF_SUPPORTED((void)arr[1], "ConstArray index out of bounds");
}

TEST(StringTableDeathTest, OutOfBoundsIndexDies) {
  const std::vector<std::string> one = {"a"};
  StringTable table = StringTable::FromStrings(one);
  EXPECT_DEATH_IF_SUPPORTED((void)table[1], "StringTable index out of bounds");
}
#endif  // NDEBUG

// --- Round-trip fidelity ------------------------------------------------------

TEST(SnapshotTest, RoundTripServesIdenticalStore) {
  const Fixture fx = SnapshotFixture();
  const std::string path = TempPath("roundtrip.snap");
  ASSERT_TRUE(WriteSnapshot(fx.graph, &fx.ontology, path).ok());

  Result<std::shared_ptr<const Dataset>> dataset = SnapshotReader::Open(path);
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  const GraphStore& loaded = (*dataset)->graph();
  ASSERT_NE((*dataset)->ontology(), nullptr);
  EXPECT_NE((*dataset)->backing(), nullptr);

  EXPECT_EQ(loaded.NumNodes(), fx.graph.NumNodes());
  EXPECT_EQ(loaded.NumEdges(), fx.graph.NumEdges());
  ASSERT_EQ(loaded.labels().size(), fx.graph.labels().size());
  for (LabelId l = 0; l < fx.graph.labels().size(); ++l) {
    EXPECT_EQ(loaded.labels().Name(l), fx.graph.labels().Name(l));
    EXPECT_EQ(loaded.Tails(l), fx.graph.Tails(l));
    EXPECT_EQ(loaded.Heads(l), fx.graph.Heads(l));
    const LabelStats a = loaded.StatsForLabel(l);
    const LabelStats b = fx.graph.StatsForLabel(l);
    EXPECT_EQ(a.edge_count, b.edge_count);
    EXPECT_EQ(a.num_tails, b.num_tails);
    EXPECT_EQ(a.num_heads, b.num_heads);
  }
  for (NodeId n = 0; n < fx.graph.NumNodes(); ++n) {
    EXPECT_EQ(loaded.NodeLabel(n), fx.graph.NodeLabel(n));
    EXPECT_EQ(loaded.FindNode(fx.graph.NodeLabel(n)), n);
    for (LabelId l = 0; l < fx.graph.labels().size(); ++l) {
      for (int dir = 0; dir < 2; ++dir) {
        auto a = loaded.Neighbors(n, l, static_cast<Direction>(dir));
        auto b = fx.graph.Neighbors(n, l, static_cast<Direction>(dir));
        ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
      }
    }
    auto sa = loaded.SigmaNeighbors(n, Direction::kOutgoing);
    auto sb = fx.graph.SigmaNeighbors(n, Direction::kOutgoing);
    ASSERT_TRUE(std::equal(sa.begin(), sa.end(), sb.begin(), sb.end()));
  }
  EXPECT_FALSE(loaded.FindNode("no such node").has_value());
}

TEST(SnapshotTest, DetachOnMutateWorksOnSnapshotBorrowedBacking) {
  // Same detach-on-mutate contract as the owned backing (oid_set_test.cc),
  // exercised on the other backing: endpoint sets of an mmap-backed store
  // view the mapping itself. Copies must deep-copy and mutations must
  // detach — never write through to the read-only mapping.
  const Fixture fx = SnapshotFixture();
  const std::string path = TempPath("detach.snap");
  ASSERT_TRUE(WriteSnapshot(fx.graph, &fx.ontology, path).ok());
  Result<std::shared_ptr<const Dataset>> dataset = SnapshotReader::Open(path);
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  const GraphStore& loaded = (*dataset)->graph();

  const LabelId worksAt = *loaded.labels().Find("worksAt");
  const OidSet& tails = loaded.Tails(worksAt);
  ASSERT_FALSE(tails.empty());
  EXPECT_TRUE(tails.borrowed());  // views the store's (mapped) row array

  OidSet copy = tails;  // deep copy: independent of the mapping
  EXPECT_FALSE(copy.borrowed());
  EXPECT_EQ(copy, tails);

  const NodeId fresh = static_cast<NodeId>(loaded.NumNodes());
  copy.Insert(fresh);  // mutation stays in the copy
  EXPECT_TRUE(copy.Contains(fresh));
  EXPECT_FALSE(tails.Contains(fresh));
  EXPECT_EQ(loaded.Tails(worksAt), fx.graph.Tails(worksAt));  // store intact
}

TEST(SnapshotTest, RoundTripQueriesMatchAcrossAllModes) {
  const Fixture fx = SnapshotFixture();
  const std::string path = TempPath("queries.snap");
  ASSERT_TRUE(WriteSnapshot(fx.graph, &fx.ontology, path).ok());
  Result<std::shared_ptr<const Dataset>> dataset = SnapshotReader::Open(path);
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();

  QueryEngine built(&fx.graph, &fx.ontology);
  QueryEngine mapped(&(*dataset)->graph(), (*dataset)->ontology());
  for (const char* text : {
           "(?X) <- (?X, knows, ?Y)",
           "(?X, ?Z) <- (?X, knows, ?Y), (?Y, knows, ?Z)",
           "(?X, ?O) <- (?X, knows, ?Y), (?Y, worksAt, ?O)",
           "(?X) <- (o0, type, ?X)",
           "(?X) <- APPROX (?X, knows.worksAt, ?Y)",
           "(?X) <- APPROX (?X, worksAt, ?Y), (?X, knows, ?Z)",
           "(?X) <- RELAX (?X, worksAt, ?Y)",
           "(?X) <- RELAX (?X, worksAt.type, ?Y)",
           "(?X) <- RELAX (?X, knows.worksAt, ?Y)",
       }) {
    const Query query = Qy(text);
    Result<std::vector<QueryAnswer>> expected = built.ExecuteTopK(query, 0);
    Result<std::vector<QueryAnswer>> actual = mapped.ExecuteTopK(query, 0);
    ASSERT_TRUE(expected.ok()) << text;
    ASSERT_TRUE(actual.ok()) << text << ": " << actual.status().ToString();
    EXPECT_EQ(CanonAnswers(*actual), CanonAnswers(*expected)) << text;
    EXPECT_FALSE(expected->empty()) << text;
  }
}

TEST(SnapshotTest, GraphOnlySnapshotHasNoOntology) {
  GraphStore g = MakeGraph({{"a", "e", "b"}, {"b", "e", "c"}});
  const std::string path = TempPath("graph_only.snap");
  ASSERT_TRUE(WriteSnapshot(g, nullptr, path).ok());
  Result<std::shared_ptr<const Dataset>> dataset = SnapshotReader::Open(path);
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  EXPECT_EQ((*dataset)->ontology(), nullptr);
  EXPECT_EQ((*dataset)->graph().NumNodes(), g.NumNodes());

  // RELAX needs an ontology and must fail cleanly on this dataset.
  QueryEngine engine(&(*dataset)->graph(), nullptr);
  Result<std::vector<QueryAnswer>> relax =
      engine.ExecuteTopK(Qy("(?X) <- RELAX (?X, e, ?Y)"), 0);
  EXPECT_FALSE(relax.ok());
}

// --- Inspect / Verify / rejection --------------------------------------------

TEST(SnapshotTest, InspectReportsHeaderAndSections) {
  const Fixture fx = SnapshotFixture();
  const std::string path = TempPath("inspect.snap");
  ASSERT_TRUE(WriteSnapshot(fx.graph, &fx.ontology, path).ok());
  Result<SnapshotInfo> info = SnapshotReader::Inspect(path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->format_version, kSnapshotFormatVersion);
  EXPECT_TRUE(info->has_ontology);
  EXPECT_EQ(info->num_nodes, fx.graph.NumNodes());
  EXPECT_EQ(info->num_edges, fx.graph.NumEdges());
  EXPECT_EQ(info->num_labels, fx.graph.labels().size());
  EXPECT_FALSE(info->sections.empty());
  EXPECT_NE(info->ToString().find("nodes_by_label"), std::string::npos);
}

TEST(SnapshotTest, VerifyPassesOnIntactFile) {
  const Fixture fx = SnapshotFixture();
  const std::string path = TempPath("verify_ok.snap");
  ASSERT_TRUE(WriteSnapshot(fx.graph, &fx.ontology, path).ok());
  EXPECT_TRUE(SnapshotReader::Verify(path).ok());
}

TEST(SnapshotTest, VerifyCatchesBitFlip) {
  const Fixture fx = SnapshotFixture();
  const std::string path = TempPath("bitflip.snap");
  ASSERT_TRUE(WriteSnapshot(fx.graph, &fx.ontology, path).ok());

  // Flip one byte inside the first non-empty neighbour section.
  Result<SnapshotInfo> info = SnapshotReader::Inspect(path);
  ASSERT_TRUE(info.ok());
  uint64_t target = 0;
  for (const SectionEntry& entry : info->sections) {
    if (static_cast<SectionKind>(entry.kind) == SectionKind::kCsrNeighbors &&
        entry.count > 0) {
      target = entry.offset;
      break;
    }
  }
  ASSERT_GT(target, 0u);
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(target));
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(static_cast<std::streamoff>(target));
    f.write(&byte, 1);
  }
  const Status status = SnapshotReader::Verify(path);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("checksum"), std::string::npos)
      << status.ToString();
}

TEST(SnapshotTest, RejectsTruncatedFile) {
  const Fixture fx = SnapshotFixture();
  const std::string path = TempPath("truncated.snap");
  ASSERT_TRUE(WriteSnapshot(fx.graph, &fx.ontology, path).ok());
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 100u);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 64));
  }
  EXPECT_FALSE(SnapshotReader::Open(path).ok());
}

TEST(SnapshotTest, RejectsWrongMagicAndMissingFile) {
  const std::string path = TempPath("not_a_snapshot.snap");
  std::ofstream(path, std::ios::binary)
      << "this is definitely not a snapshot file, but long enough to "
         "contain a header-sized prefix.";
  Result<std::shared_ptr<const Dataset>> r = SnapshotReader::Open(path);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());

  Result<std::shared_ptr<const Dataset>> missing =
      SnapshotReader::Open(TempPath("does_not_exist.snap"));
  ASSERT_FALSE(missing.ok());
  EXPECT_TRUE(missing.status().IsNotFound());
}

TEST(SnapshotTest, FromPartsWrapsInMemoryDataset) {
  Fixture fx = SnapshotFixture();
  const size_t nodes = fx.graph.NumNodes();
  std::shared_ptr<const Dataset> dataset =
      Dataset::FromParts(std::move(fx.graph), std::move(fx.ontology));
  EXPECT_EQ(dataset->graph().NumNodes(), nodes);
  EXPECT_NE(dataset->ontology(), nullptr);
  EXPECT_EQ(dataset->backing(), nullptr);
}

}  // namespace
}  // namespace omega
