#include "store/graph_store.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "store/graph_builder.h"
#include "test_util.h"

namespace omega {
namespace {

using testing::MakeGraph;

TEST(LabelDictionaryTest, TypeIsAlwaysIdZero) {
  LabelDictionary dict;
  EXPECT_EQ(dict.type_label(), 0u);
  EXPECT_EQ(dict.Name(0), "type");
  EXPECT_TRUE(dict.IsType(0));
  EXPECT_EQ(*dict.Find("type"), 0u);
}

TEST(LabelDictionaryTest, InternIsIdempotent) {
  LabelDictionary dict;
  const LabelId a = dict.Intern("knows");
  EXPECT_EQ(dict.Intern("knows"), a);
  EXPECT_EQ(dict.Name(a), "knows");
  EXPECT_EQ(dict.size(), 2u);
}

TEST(LabelDictionaryTest, SigmaLabelsExcludeType) {
  LabelDictionary dict;
  dict.Intern("a");
  dict.Intern("b");
  const auto sigma = dict.SigmaLabels();
  EXPECT_EQ(sigma.size(), 2u);
  for (LabelId l : sigma) EXPECT_NE(l, LabelDictionary::kTypeLabel);
}

TEST(GraphBuilderTest, RejectsReservedOntologyLabels) {
  GraphBuilder builder;
  for (const char* name : {"sc", "sp", "dom", "range"}) {
    EXPECT_FALSE(builder.InternLabel(name).ok()) << name;
  }
  EXPECT_FALSE(builder.InternLabel("").ok());
  EXPECT_TRUE(builder.InternLabel("type").ok());  // type is a data label
}

TEST(GraphBuilderTest, RejectsOutOfRangeIds) {
  GraphBuilder builder;
  const NodeId a = builder.GetOrAddNode("a");
  Result<LabelId> l = builder.InternLabel("e");
  EXPECT_FALSE(builder.AddEdge(a, *l, 999).ok());
  EXPECT_FALSE(builder.AddEdge(999, *l, a).ok());
  EXPECT_FALSE(builder.AddEdge(a, 999, a).ok());
}

TEST(GraphStoreTest, BasicNeighbors) {
  GraphStore g = MakeGraph({{"a", "knows", "b"},
                            {"a", "knows", "c"},
                            {"b", "likes", "c"}});
  const NodeId a = *g.FindNode("a");
  const NodeId b = *g.FindNode("b");
  const NodeId c = *g.FindNode("c");
  const LabelId knows = *g.labels().Find("knows");
  const LabelId likes = *g.labels().Find("likes");

  auto out = g.Neighbors(a, knows, Direction::kOutgoing);
  EXPECT_EQ(std::set<NodeId>(out.begin(), out.end()),
            (std::set<NodeId>{b, c}));
  EXPECT_TRUE(g.Neighbors(a, likes, Direction::kOutgoing).empty());
  auto in = g.Neighbors(c, knows, Direction::kIncoming);
  EXPECT_EQ(std::set<NodeId>(in.begin(), in.end()), (std::set<NodeId>{a}));
  EXPECT_TRUE(g.HasEdge(a, knows, b));
  EXPECT_FALSE(g.HasEdge(b, knows, a));
}

TEST(GraphStoreTest, DuplicateEdgesCollapse) {
  GraphStore g = MakeGraph({{"a", "e", "b"}, {"a", "e", "b"}});
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_EQ(g.Neighbors(*g.FindNode("a"), *g.labels().Find("e"),
                        Direction::kOutgoing)
                .size(),
            1u);
}

TEST(GraphStoreTest, NodeLabelLookups) {
  GraphStore g = MakeGraph({{"Work Episode", "e", "b"}});
  ASSERT_TRUE(g.FindNode("Work Episode").has_value());
  EXPECT_EQ(g.NodeLabel(*g.FindNode("Work Episode")), "Work Episode");
  EXPECT_FALSE(g.FindNode("missing").has_value());
}

TEST(GraphStoreTest, SigmaNeighborsExcludeType) {
  GraphBuilder builder;
  const NodeId x = builder.GetOrAddNode("x");
  const NodeId y = builder.GetOrAddNode("y");
  const NodeId k = builder.GetOrAddNode("k");
  ASSERT_TRUE(builder.AddEdge(x, *builder.InternLabel("e"), y).ok());
  ASSERT_TRUE(builder.AddTypeEdge(x, k).ok());
  GraphStore g = std::move(builder).Finalize();

  auto sigma = g.SigmaNeighbors(x, Direction::kOutgoing);
  EXPECT_EQ(std::set<NodeId>(sigma.begin(), sigma.end()),
            (std::set<NodeId>{y}));
  auto types = g.TypeNeighbors(x, Direction::kOutgoing);
  EXPECT_EQ(std::set<NodeId>(types.begin(), types.end()),
            (std::set<NodeId>{k}));
}

TEST(GraphStoreTest, HeadsTailsSets) {
  GraphStore g = MakeGraph(
      {{"a", "e", "b"}, {"c", "e", "b"}, {"b", "f", "a"}});
  const LabelId e = *g.labels().Find("e");
  const NodeId a = *g.FindNode("a");
  const NodeId b = *g.FindNode("b");
  const NodeId c = *g.FindNode("c");
  EXPECT_EQ(g.Tails(e), (OidSet{a, c}));
  EXPECT_EQ(g.Heads(e), (OidSet{b}));
  EXPECT_EQ(g.TailsAndHeads(e), (OidSet{a, b, c}));
  EXPECT_TRUE(g.Tails(999).empty());
}

TEST(GraphStoreTest, DegreeCountsBothDirectionsAllLabels) {
  GraphBuilder builder;
  const NodeId x = builder.GetOrAddNode("x");
  const NodeId y = builder.GetOrAddNode("y");
  ASSERT_TRUE(builder.AddEdge(x, *builder.InternLabel("e"), y).ok());
  ASSERT_TRUE(builder.AddEdge(y, *builder.InternLabel("f"), x).ok());
  ASSERT_TRUE(builder.AddTypeEdge(x, y).ok());
  GraphStore g = std::move(builder).Finalize();
  EXPECT_EQ(g.Degree(x), 3u);  // e out, f in, type out
  EXPECT_EQ(g.Degree(y), 3u);
}

TEST(GraphStoreTest, MoveKeepsBorrowedSpansValid) {
  // Finalize hands the store to its final resting place by move; every span
  // and string_view taken from it must survive that move because the CSR
  // arrays and label heap move their buffers rather than copy. The snapshot
  // loader and QueryService's epoch swap rely on the same property.
  GraphStore a = MakeGraph({{"a", "knows", "b"}, {"a", "knows", "c"}});
  const NodeId n = *a.FindNode("a");
  std::span<const NodeId> neighbors_before =
      a.SigmaNeighbors(n, Direction::kOutgoing);
  std::string_view label_before = a.NodeLabel(n);
  const std::vector<NodeId> neighbor_values(neighbors_before.begin(),
                                            neighbors_before.end());

  GraphStore b = std::move(a);
  std::span<const NodeId> neighbors_after =
      b.SigmaNeighbors(n, Direction::kOutgoing);
  EXPECT_EQ(neighbors_after.data(), neighbors_before.data());
  EXPECT_EQ(b.NodeLabel(n).data(), label_before.data());
  EXPECT_EQ(std::vector<NodeId>(neighbors_after.begin(),
                                neighbors_after.end()),
            neighbor_values);
  EXPECT_EQ(b.NodeLabel(n), "a");
}

TEST(GraphStoreTest, ApproxMemoryIsPositive) {
  GraphStore g = MakeGraph({{"a", "e", "b"}});
  EXPECT_GT(g.ApproxMemoryBytes(), 0u);
}

class StoreRandomizedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StoreRandomizedTest, MatchesAdjacencyMapReference) {
  Rng rng(GetParam());
  constexpr size_t kNodes = 40;
  const std::vector<std::string> labels = {"a", "b", "c"};

  GraphBuilder builder;
  std::vector<NodeId> nodes;
  for (size_t i = 0; i < kNodes; ++i) {
    nodes.push_back(builder.GetOrAddNode("n" + std::to_string(i)));
  }
  // Reference: label -> (src -> set of dst).
  std::map<std::string, std::map<NodeId, std::set<NodeId>>> ref;
  for (int i = 0; i < 400; ++i) {
    const std::string& label = labels[rng.NextBounded(labels.size())];
    const NodeId src = nodes[rng.NextBounded(kNodes)];
    const NodeId dst = nodes[rng.NextBounded(kNodes)];
    ASSERT_TRUE(builder.AddEdge(src, *builder.InternLabel(label), dst).ok());
    ref[label][src].insert(dst);
  }
  GraphStore g = std::move(builder).Finalize();

  size_t total = 0;
  for (const auto& [label, adj] : ref) {
    const LabelId l = *g.labels().Find(label);
    std::map<NodeId, std::set<NodeId>> rev;
    for (const auto& [src, dsts] : adj) {
      total += dsts.size();
      auto got = g.Neighbors(src, l, Direction::kOutgoing);
      EXPECT_EQ(std::set<NodeId>(got.begin(), got.end()), dsts);
      for (NodeId dst : dsts) rev[dst].insert(src);
    }
    for (const auto& [dst, srcs] : rev) {
      auto got = g.Neighbors(dst, l, Direction::kIncoming);
      EXPECT_EQ(std::set<NodeId>(got.begin(), got.end()), srcs);
    }
    // Tails/Heads agree with the reference row sets.
    std::vector<NodeId> tails, heads;
    for (const auto& [src, dsts] : adj) tails.push_back(src);
    for (const auto& [dst, srcs] : rev) heads.push_back(dst);
    EXPECT_EQ(g.Tails(l), OidSet::FromUnsorted(tails));
    EXPECT_EQ(g.Heads(l), OidSet::FromUnsorted(heads));
  }
  EXPECT_EQ(g.NumEdges(), total);

  // Sigma union equals the union over all labels.
  for (NodeId n : nodes) {
    std::set<NodeId> expected;
    for (const auto& [label, adj] : ref) {
      auto it = adj.find(n);
      if (it != adj.end()) expected.insert(it->second.begin(), it->second.end());
    }
    auto got = g.SigmaNeighbors(n, Direction::kOutgoing);
    EXPECT_EQ(std::set<NodeId>(got.begin(), got.end()), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreRandomizedTest,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace omega
