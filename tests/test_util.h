// Shared helpers for the omega test suite: tiny graph construction, an
// independent reference evaluator (plain Dijkstra over the product space,
// none of the engine's dictionaries/batching/visited machinery), and random
// graph/regex generators for property sweeps.
#ifndef OMEGA_TESTS_TEST_UTIL_H_
#define OMEGA_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <map>
#include <queue>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "eval/conjunct_evaluator.h"
#include "eval/query_engine.h"
#include "eval/rank_join.h"
#include "ontology/ontology.h"
#include "rpq/query_parser.h"
#include "rpq/regex_parser.h"
#include "store/graph_builder.h"
#include "store/graph_store.h"

namespace omega::testing {

/// Builds a graph from (src, label, dst) string triples.
inline GraphStore MakeGraph(
    const std::vector<std::tuple<std::string, std::string, std::string>>&
        triples) {
  GraphBuilder builder;
  for (const auto& [src, label, dst] : triples) {
    Status s = builder.AddEdge(src, label, dst);
    if (!s.ok()) throw std::runtime_error(s.ToString());
  }
  return std::move(builder).Finalize();
}

/// Deterministic scripted binding stream for join tests: replays a fixed
/// row vector (rows must have the full catalogue width, like real conjunct
/// streams).
class ScriptedBindingStream : public BindingStream {
 public:
  ScriptedBindingStream(std::vector<VarId> vars, std::vector<Binding> rows)
      : vars_(std::move(vars)), rows_(std::move(rows)) {}

  bool Next(Binding* out) override {
    if (pos_ >= rows_.size()) return false;
    *out = rows_[pos_++];
    return true;
  }
  const Status& status() const override { return status_; }
  const std::vector<VarId>& variables() const override { return vars_; }

 private:
  std::vector<VarId> vars_;
  std::vector<Binding> rows_;
  size_t pos_ = 0;
  Status status_;
};

/// Parses a full query or aborts the test.
inline Query Qy(const std::string& text) {
  Result<Query> q = ParseQuery(text);
  if (!q.ok()) throw std::runtime_error(q.status().ToString());
  return std::move(q).value();
}

/// Normalises projected answers for multiset comparison.
inline std::vector<std::pair<std::vector<NodeId>, Cost>> CanonAnswers(
    const std::vector<QueryAnswer>& answers) {
  std::vector<std::pair<std::vector<NodeId>, Cost>> rows;
  rows.reserve(answers.size());
  for (const QueryAnswer& a : answers) {
    rows.emplace_back(a.bindings, a.distance);
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// Parses a regex or aborts the test.
inline RegexPtr Rx(const std::string& text) {
  Result<RegexPtr> r = ParseRegex(text);
  if (!r.ok()) throw std::runtime_error(r.status().ToString());
  return std::move(r).value();
}

/// Parses a conjunct or aborts the test.
inline Conjunct Cj(const std::string& text) {
  Result<Conjunct> r = ParseConjunct(text);
  if (!r.ok()) throw std::runtime_error(r.status().ToString());
  return std::move(r).value();
}

/// Independent neighbour semantics mirroring §3.4 (kept deliberately naive).
inline std::vector<NodeId> ReferenceNeighbors(const GraphStore& g,
                                              const BoundOntology* ontology,
                                              bool entailment, NodeId n,
                                              const NfaTransition& t) {
  std::vector<NodeId> out;
  auto add_span = [&out](std::span<const NodeId> ids) {
    out.insert(out.end(), ids.begin(), ids.end());
  };
  switch (t.kind) {
    case TransitionKind::kEpsilon:
      break;
    case TransitionKind::kLabel:
      if (t.label == kInvalidLabel) break;
      if (entailment && ontology != nullptr &&
          t.label != LabelDictionary::kTypeLabel) {
        for (LabelId down : ontology->LabelDownSet(t.label)) {
          add_span(g.Neighbors(n, down, t.dir));
        }
      } else if (entailment && ontology != nullptr &&
                 t.label == LabelDictionary::kTypeLabel) {
        if (t.dir == Direction::kOutgoing) {
          for (NodeId c : g.TypeNeighbors(n, Direction::kOutgoing)) {
            out.push_back(c);
            for (auto& [anc, steps] : ontology->NodeAncestors(c)) {
              out.push_back(anc);
            }
          }
        } else {
          const OidSet& down = ontology->NodeDownSet(n);
          if (down.empty()) {
            add_span(g.TypeNeighbors(n, Direction::kIncoming));
          } else {
            for (NodeId c : down) {
              add_span(g.TypeNeighbors(c, Direction::kIncoming));
            }
          }
        }
      } else {
        add_span(g.Neighbors(n, t.label, t.dir));
      }
      break;
    case TransitionKind::kAnyLabel:
      add_span(g.SigmaNeighbors(n, t.dir));
      add_span(g.TypeNeighbors(n, t.dir));
      break;
    case TransitionKind::kAnyLabelBothDirs:
      add_span(g.SigmaNeighbors(n, Direction::kOutgoing));
      add_span(g.SigmaNeighbors(n, Direction::kIncoming));
      add_span(g.TypeNeighbors(n, Direction::kOutgoing));
      add_span(g.TypeNeighbors(n, Direction::kIncoming));
      break;
    case TransitionKind::kConstrainedType:
      if (ontology != nullptr) {
        for (NodeId c : g.TypeNeighbors(n, Direction::kOutgoing)) {
          if (ontology->NodeDownSet(t.class_node).Contains(c)) {
            out.push_back(c);
          }
        }
      }
      break;
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

/// Plain Dijkstra over (start, node, state): the complete set of answers of
/// a prepared conjunct with distance <= max_distance, sorted by
/// (distance, v, n). Seeds every graph node for variable sources (plus
/// RELAX class-ancestor seeds for constant class sources).
inline std::vector<Answer> ReferenceAnswers(const GraphStore& g,
                                            const BoundOntology* ontology,
                                            const PreparedConjunct& prepared,
                                            Cost max_distance,
                                            Cost relax_beta = 1) {
  const Nfa& nfa = prepared.nfa;
  using Key = std::tuple<NodeId, NodeId, StateId>;  // (v, n, s)
  std::map<Key, Cost> dist;
  using Entry = std::pair<Cost, Key>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;

  auto push = [&](NodeId v, NodeId n, StateId s, Cost d) {
    if (d > max_distance) return;
    Key key{v, n, s};
    auto it = dist.find(key);
    if (it != dist.end() && it->second <= d) return;
    dist[key] = d;
    heap.emplace(d, key);
  };

  if (!prepared.eval_source.is_variable) {
    auto c = g.FindNode(prepared.eval_source.name);
    if (!c) return {};
    push(*c, *c, nfa.initial(), 0);
    if (prepared.mode == ConjunctMode::kRelax && ontology != nullptr) {
      for (auto& [ancestor, steps] : ontology->NodeAncestors(*c)) {
        push(ancestor, ancestor, nfa.initial(),
             static_cast<Cost>(steps) * relax_beta);
      }
    }
  } else {
    for (NodeId n = 0; n < g.NumNodes(); ++n) {
      push(n, n, nfa.initial(), 0);
    }
  }

  std::map<std::pair<NodeId, NodeId>, Cost> best;
  const bool entail = nfa.entailment_matching();
  while (!heap.empty()) {
    auto [d, key] = heap.top();
    heap.pop();
    auto it = dist.find(key);
    if (it == dist.end() || it->second < d) continue;
    auto [v, n, s] = key;
    if (nfa.IsFinal(s) && d + nfa.FinalWeight(s) <= max_distance) {
      bool matches = true;
      if (!prepared.eval_target.is_variable) {
        auto target = g.FindNode(prepared.eval_target.name);
        matches = target && *target == n;
      }
      if (matches) {
        auto bi = best.find({v, n});
        const Cost answer_d = d + nfa.FinalWeight(s);
        if (bi == best.end() || answer_d < bi->second) {
          best[{v, n}] = answer_d;
        }
      }
    }
    for (const NfaTransition& t : nfa.Out(s)) {
      for (NodeId m : ReferenceNeighbors(g, ontology, entail, n, t)) {
        push(v, m, t.to, d + t.cost);
      }
    }
  }

  std::vector<Answer> answers;
  for (const auto& [pair, d] : best) {
    answers.push_back({pair.first, pair.second, d});
  }
  std::sort(answers.begin(), answers.end(), [](const Answer& a,
                                               const Answer& b) {
    return std::tie(a.distance, a.v, a.n) < std::tie(b.distance, b.v, b.n);
  });
  return answers;
}

/// Drains `stream` up to answers of distance <= max_distance (relies on
/// non-decreasing emission order), normalised for set comparison.
inline std::vector<Answer> DrainUpTo(AnswerStream* stream, Cost max_distance) {
  std::vector<Answer> out;
  Answer a;
  while (stream->Next(&a)) {
    if (a.distance > max_distance) break;
    out.push_back(a);
  }
  std::sort(out.begin(), out.end(), [](const Answer& x, const Answer& y) {
    return std::tie(x.distance, x.v, x.n) < std::tie(y.distance, y.v, y.n);
  });
  return out;
}

/// Deterministic random graph: `num_nodes` nodes "n<i>", edges drawn over
/// `labels` with the given density (expected edges per node per label).
inline GraphStore RandomGraph(uint64_t seed, size_t num_nodes,
                              const std::vector<std::string>& labels,
                              double density) {
  Rng rng(seed);
  GraphBuilder builder;
  std::vector<NodeId> nodes;
  for (size_t i = 0; i < num_nodes; ++i) {
    nodes.push_back(builder.GetOrAddNode("n" + std::to_string(i)));
  }
  for (const std::string& label : labels) {
    Result<LabelId> l = builder.InternLabel(label);
    const size_t edges =
        static_cast<size_t>(density * static_cast<double>(num_nodes));
    for (size_t e = 0; e < edges; ++e) {
      Status s = builder.AddEdge(nodes[rng.NextBounded(num_nodes)], *l,
                                 nodes[rng.NextBounded(num_nodes)]);
      (void)s;
    }
  }
  return std::move(builder).Finalize();
}

/// Random regex over `labels` with the paper's grammar, bounded depth.
inline RegexPtr RandomRegex(Rng* rng, const std::vector<std::string>& labels,
                            int depth) {
  const int pick = depth <= 0 ? static_cast<int>(rng->NextBounded(3))
                              : static_cast<int>(rng->NextBounded(7));
  switch (pick) {
    case 0:
      return MakeLabel(labels[rng->NextBounded(labels.size())]);
    case 1:
      return MakeLabel(labels[rng->NextBounded(labels.size())],
                       Direction::kIncoming);
    case 2:
      return MakeWildcard();
    case 3: {
      std::vector<RegexPtr> parts;
      const size_t n = 2 + rng->NextBounded(2);
      for (size_t i = 0; i < n; ++i) {
        parts.push_back(RandomRegex(rng, labels, depth - 1));
      }
      return MakeConcat(std::move(parts));
    }
    case 4: {
      std::vector<RegexPtr> parts;
      const size_t n = 2 + rng->NextBounded(2);
      for (size_t i = 0; i < n; ++i) {
        parts.push_back(RandomRegex(rng, labels, depth - 1));
      }
      return MakeAlternation(std::move(parts));
    }
    case 5:
      return MakeStar(RandomRegex(rng, labels, depth - 1));
    default:
      return MakePlus(RandomRegex(rng, labels, depth - 1));
  }
}

}  // namespace omega::testing

#endif  // OMEGA_TESTS_TEST_UTIL_H_
