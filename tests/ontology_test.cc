#include "ontology/ontology.h"

#include <gtest/gtest.h>

#include "store/graph_builder.h"
#include "test_util.h"

namespace omega {
namespace {

Ontology SmallOntology() {
  OntologyBuilder b;
  // Episode -> {Work, Edu}; Work -> {FT, PT}.
  EXPECT_TRUE(b.AddSubclass("Work", "Episode").ok());
  EXPECT_TRUE(b.AddSubclass("Edu", "Episode").ok());
  EXPECT_TRUE(b.AddSubclass("FT", "Work").ok());
  EXPECT_TRUE(b.AddSubclass("PT", "Work").ok());
  EXPECT_TRUE(b.AddSubproperty("next", "isEpisodeLink").ok());
  EXPECT_TRUE(b.AddSubproperty("prereq", "isEpisodeLink").ok());
  EXPECT_TRUE(b.SetDomain("next", "Episode").ok());
  EXPECT_TRUE(b.SetRange("next", "Episode").ok());
  Result<Ontology> o = std::move(b).Finalize();
  EXPECT_TRUE(o.ok());
  return std::move(o).value();
}

TEST(OntologyTest, LookupAndNames) {
  Ontology o = SmallOntology();
  ASSERT_TRUE(o.FindClass("Work").has_value());
  EXPECT_EQ(o.ClassName(*o.FindClass("Work")), "Work");
  EXPECT_FALSE(o.FindClass("Nope").has_value());
  ASSERT_TRUE(o.FindProperty("next").has_value());
  EXPECT_FALSE(o.FindProperty("nope").has_value());
  EXPECT_EQ(o.NumClasses(), 5u);
  EXPECT_EQ(o.NumProperties(), 3u);
}

TEST(OntologyTest, AncestorsOrderedBySteps) {
  Ontology o = SmallOntology();
  auto ancestors = o.ClassAncestors(*o.FindClass("FT"));
  ASSERT_EQ(ancestors.size(), 2u);
  EXPECT_EQ(o.ClassName(ancestors[0].element), "Work");
  EXPECT_EQ(ancestors[0].steps, 1u);
  EXPECT_EQ(o.ClassName(ancestors[1].element), "Episode");
  EXPECT_EQ(ancestors[1].steps, 2u);
  EXPECT_TRUE(o.ClassAncestors(*o.FindClass("Episode")).empty());
}

TEST(OntologyTest, PropertyAncestors) {
  Ontology o = SmallOntology();
  auto ancestors = o.PropertyAncestors(*o.FindProperty("next"));
  ASSERT_EQ(ancestors.size(), 1u);
  EXPECT_EQ(o.PropertyName(ancestors[0].element), "isEpisodeLink");
}

TEST(OntologyTest, DownSetsIncludeSelfAndDescendants) {
  Ontology o = SmallOntology();
  const ClassId episode = *o.FindClass("Episode");
  const auto& down = o.ClassDownSet(episode);
  EXPECT_EQ(down.size(), 5u);  // all classes
  const ClassId work = *o.FindClass("Work");
  EXPECT_EQ(o.ClassDownSet(work).size(), 3u);  // Work, FT, PT
  const ClassId ft = *o.FindClass("FT");
  EXPECT_EQ(o.ClassDownSet(ft).size(), 1u);
}

TEST(OntologyTest, DomainsAndRanges) {
  Ontology o = SmallOntology();
  const PropertyId next = *o.FindProperty("next");
  ASSERT_TRUE(o.DomainOf(next).has_value());
  EXPECT_EQ(o.ClassName(*o.DomainOf(next)), "Episode");
  const PropertyId prereq = *o.FindProperty("prereq");
  EXPECT_FALSE(o.DomainOf(prereq).has_value());
}

TEST(OntologyTest, DepthAndFanOut) {
  Ontology o = SmallOntology();
  EXPECT_EQ(o.HierarchyDepth(*o.FindClass("Episode")), 2u);
  EXPECT_EQ(o.HierarchyDepth(*o.FindClass("FT")), 0u);
  // Non-leaves: Episode (2 children), Work (2 children) -> fan-out 2.0.
  EXPECT_DOUBLE_EQ(o.AverageFanOut(*o.FindClass("Episode")), 2.0);
}

TEST(OntologyTest, RejectsScCycle) {
  OntologyBuilder b;
  EXPECT_TRUE(b.AddSubclass("A", "B").ok());
  EXPECT_TRUE(b.AddSubclass("B", "C").ok());
  EXPECT_TRUE(b.AddSubclass("C", "A").ok());
  Result<Ontology> o = std::move(b).Finalize();
  ASSERT_FALSE(o.ok());
  EXPECT_TRUE(o.status().IsInvalidArgument());
}

TEST(OntologyTest, RejectsSpCycle) {
  OntologyBuilder b;
  EXPECT_TRUE(b.AddSubproperty("p", "q").ok());
  EXPECT_TRUE(b.AddSubproperty("q", "p").ok());
  EXPECT_FALSE(std::move(b).Finalize().ok());
}

TEST(OntologyTest, RejectsSelfSubclassAndDuplicates) {
  OntologyBuilder b;
  EXPECT_FALSE(b.AddSubclass("A", "A").ok());
  EXPECT_TRUE(b.AddSubclass("A", "B").ok());
  EXPECT_FALSE(b.AddSubclass("A", "B").ok());  // duplicate sc edge
}

TEST(OntologyTest, MultipleInheritanceAncestors) {
  OntologyBuilder b;
  EXPECT_TRUE(b.AddSubclass("C", "A").ok());
  EXPECT_TRUE(b.AddSubclass("C", "B").ok());
  EXPECT_TRUE(b.AddSubclass("A", "Root").ok());
  EXPECT_TRUE(b.AddSubclass("B", "Root").ok());
  Result<Ontology> o = std::move(b).Finalize();
  ASSERT_TRUE(o.ok());
  auto ancestors = o->ClassAncestors(*o->FindClass("C"));
  ASSERT_EQ(ancestors.size(), 3u);  // A, B at 1 step; Root at 2 (min path)
  EXPECT_EQ(ancestors[0].steps, 1u);
  EXPECT_EQ(ancestors[1].steps, 1u);
  EXPECT_EQ(ancestors[2].steps, 2u);
  EXPECT_EQ(o->ClassName(ancestors[2].element), "Root");
}

TEST(BoundOntologyTest, BindsClassesAndProperties) {
  Ontology o = SmallOntology();
  GraphBuilder builder;
  const NodeId episode_node = builder.GetOrAddNode("Episode");
  const NodeId work_node = builder.GetOrAddNode("Work");
  const NodeId ft_node = builder.GetOrAddNode("FT");
  const NodeId inst = builder.GetOrAddNode("e1");
  ASSERT_TRUE(builder.AddTypeEdge(inst, ft_node).ok());
  ASSERT_TRUE(
      builder.AddEdge(inst, *builder.InternLabel("next"), inst).ok());
  ASSERT_TRUE(
      builder.AddEdge(inst, *builder.InternLabel("isEpisodeLink"), inst).ok());
  GraphStore g = std::move(builder).Finalize();

  BoundOntology bound(&o, &g);
  EXPECT_TRUE(bound.IsClassNode(work_node));
  EXPECT_TRUE(bound.IsClassNode(ft_node));
  EXPECT_FALSE(bound.IsClassNode(inst));

  auto ancestors = bound.NodeAncestors(ft_node);
  ASSERT_EQ(ancestors.size(), 2u);
  EXPECT_EQ(ancestors[0], (std::pair<NodeId, uint32_t>{work_node, 1}));
  EXPECT_EQ(ancestors[1], (std::pair<NodeId, uint32_t>{episode_node, 2}));

  // Down-set of Work contains Work + FT (PT has no graph node).
  const OidSet& down = bound.NodeDownSet(work_node);
  EXPECT_TRUE(down.Contains(work_node));
  EXPECT_TRUE(down.Contains(ft_node));
  EXPECT_EQ(down.size(), 2u);

  // Label down-set of isEpisodeLink contains itself, next, and a synthetic
  // id standing in for prereq (which never occurs as a graph edge).
  const LabelId link = *g.labels().Find("isEpisodeLink");
  const LabelId next = *g.labels().Find("next");
  const auto& label_down = bound.LabelDownSet(link);
  EXPECT_EQ(label_down.size(), 3u);
  EXPECT_TRUE(std::find(label_down.begin(), label_down.end(), next) !=
              label_down.end());
  const auto synthetic_prereq = bound.FindSyntheticLabel("prereq");
  ASSERT_TRUE(synthetic_prereq.has_value());
  EXPECT_GE(*synthetic_prereq, g.labels().size());
  EXPECT_TRUE(std::find(label_down.begin(), label_down.end(),
                        *synthetic_prereq) != label_down.end());
  // Graph adjacency on the synthetic label is safely empty.
  EXPECT_TRUE(g.Tails(*synthetic_prereq).empty());

  // A label id the binding has never seen (neither graph-interned nor
  // synthetic) yields an empty down-set: the old lazily-inserted {self}
  // fallback was a mutable cache behind a const API — a data race under
  // concurrent evaluation — and such ids never reach the evaluator anyway
  // (unknown regex labels compile to kInvalidLabel).
  EXPECT_TRUE(bound.LabelDownSet(next + 100).empty());

  // A graph label with no ontology property resolves to the precomputed
  // trivial down-set {self}.
  const auto& type_down = bound.LabelDownSet(LabelDictionary::kTypeLabel);
  ASSERT_EQ(type_down.size(), 1u);
  EXPECT_EQ(type_down[0], LabelDictionary::kTypeLabel);

  // BoundClassNodes contains exactly the three class nodes present.
  EXPECT_EQ(bound.BoundClassNodes().size(), 3u);
}

TEST(BoundOntologyTest, DomainRangeNodes) {
  Ontology o = SmallOntology();
  GraphBuilder builder;
  builder.GetOrAddNode("Episode");
  const NodeId inst = builder.GetOrAddNode("e1");
  ASSERT_TRUE(builder.AddEdge(inst, *builder.InternLabel("next"), inst).ok());
  GraphStore g = std::move(builder).Finalize();
  BoundOntology bound(&o, &g);
  const LabelId next = *g.labels().Find("next");
  ASSERT_TRUE(bound.DomainNodeOf(next).has_value());
  EXPECT_EQ(*bound.DomainNodeOf(next), *g.FindNode("Episode"));
  EXPECT_TRUE(bound.RangeNodeOf(next).has_value());
}

TEST(BoundOntologyTest, LabelAncestorsAsGraphLabels) {
  Ontology o = SmallOntology();
  GraphStore g = testing::MakeGraph(
      {{"a", "next", "b"}, {"a", "isEpisodeLink", "b"}});
  BoundOntology bound(&o, &g);
  const LabelId next = *g.labels().Find("next");
  auto ancestors = bound.LabelAncestors(next);
  ASSERT_EQ(ancestors.size(), 1u);
  EXPECT_EQ(ancestors[0].first, *g.labels().Find("isEpisodeLink"));
  EXPECT_EQ(ancestors[0].second, 1u);
}

}  // namespace
}  // namespace omega
