// Randomized end-to-end RELAX sweeps: the engine's evaluator against the
// independent reference product search, over random graphs, random
// ontologies and random regexes; plus disjunction early-stop ordering and
// empty-graph robustness.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "eval/disjunction.h"
#include "eval/query_engine.h"
#include "rpq/query_parser.h"
#include "test_util.h"

namespace omega {
namespace {

using testing::DrainUpTo;
using testing::ReferenceAnswers;

struct RandomWorld {
  GraphStore graph;
  Ontology ontology;
  std::unique_ptr<BoundOntology> bound;
};

/// Random world: properties p0..p3 with a random sp forest, classes c0..c3
/// with a random sc forest, instances typed randomly, edges over properties.
RandomWorld MakeWorld(uint64_t seed) {
  Rng rng(seed);
  RandomWorld world;

  OntologyBuilder ob;
  const std::vector<std::string> properties = {"p0", "p1", "p2", "p3"};
  // Random forest: pi may be a subproperty of some pj with j > i.
  for (size_t i = 0; i + 1 < properties.size(); ++i) {
    if (rng.NextBool(0.6)) {
      const size_t parent = i + 1 + rng.NextBounded(properties.size() - i - 1);
      EXPECT_TRUE(ob.AddSubproperty(properties[i], properties[parent]).ok());
    }
  }
  const std::vector<std::string> classes = {"c0", "c1", "c2", "c3"};
  for (size_t i = 0; i + 1 < classes.size(); ++i) {
    if (rng.NextBool(0.6)) {
      const size_t parent = i + 1 + rng.NextBounded(classes.size() - i - 1);
      EXPECT_TRUE(ob.AddSubclass(classes[i], classes[parent]).ok());
    }
  }
  Result<Ontology> ontology = std::move(ob).Finalize();
  EXPECT_TRUE(ontology.ok());
  world.ontology = std::move(ontology).value();

  GraphBuilder gb;
  constexpr size_t kInstances = 14;
  std::vector<NodeId> nodes;
  for (size_t i = 0; i < kInstances; ++i) {
    nodes.push_back(gb.GetOrAddNode("n" + std::to_string(i)));
  }
  std::vector<NodeId> class_nodes;
  for (const std::string& c : classes) {
    class_nodes.push_back(gb.GetOrAddNode(c));
  }
  for (NodeId n : nodes) {
    if (rng.NextBool(0.7)) {
      EXPECT_TRUE(
          gb.AddTypeEdge(n, class_nodes[rng.NextBounded(class_nodes.size())])
              .ok());
    }
  }
  for (const std::string& p : properties) {
    Result<LabelId> l = gb.InternLabel(p);
    for (int e = 0; e < 16; ++e) {
      EXPECT_TRUE(gb.AddEdge(nodes[rng.NextBounded(kInstances)], *l,
                             nodes[rng.NextBounded(kInstances)])
                      .ok());
    }
  }
  world.graph = std::move(gb).Finalize();
  world.bound = std::make_unique<BoundOntology>(&world.ontology, &world.graph);
  return world;
}

class RelaxPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RelaxPropertyTest, EvaluatorMatchesReferenceUpToDistanceThree) {
  Rng rng(GetParam() * 6151);
  RandomWorld world = MakeWorld(GetParam());
  const std::vector<std::string> labels = {"p0", "p1", "p2", "type"};

  for (int round = 0; round < 6; ++round) {
    RegexPtr regex = testing::RandomRegex(&rng, labels, 2);
    Conjunct conjunct;
    conjunct.mode = ConjunctMode::kRelax;
    // Mix constant instance, constant class, and variable sources.
    const int shape = static_cast<int>(rng.NextBounded(3));
    conjunct.source =
        shape == 0 ? Endpoint::Constant("n" + std::to_string(
                         rng.NextBounded(14)))
        : shape == 1
            ? Endpoint::Constant("c" + std::to_string(rng.NextBounded(4)))
            : Endpoint::Variable("X");
    conjunct.target = Endpoint::Variable("Y");
    conjunct.regex = Clone(*regex);

    EvaluatorOptions options;
    options.max_distance = 3;
    Result<PreparedConjunct> prepared =
        PrepareConjunct(conjunct, world.graph, world.bound.get(), options);
    ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
    ConjunctEvaluator evaluator(&world.graph, world.bound.get(), &*prepared,
                                options);
    auto got = DrainUpTo(&evaluator, 3);
    auto expected =
        ReferenceAnswers(world.graph, world.bound.get(), *prepared, 3);

    // With a constant source, duplicate-answer suppression is on variable
    // bindings (n only): compare per-n minimum distances.
    if (!conjunct.source.is_variable) {
      std::map<NodeId, Cost> got_min, expected_min;
      for (const Answer& a : got) {
        auto [it, inserted] = got_min.try_emplace(a.n, a.distance);
        EXPECT_TRUE(inserted) << "duplicate ?Y binding";
      }
      for (const Answer& a : expected) {
        auto [it, inserted] = expected_min.try_emplace(a.n, a.distance);
        if (!inserted) it->second = std::min(it->second, a.distance);
      }
      EXPECT_EQ(got_min, expected_min) << ToString(*regex);
    } else {
      EXPECT_EQ(got, expected) << ToString(*regex);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelaxPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(DisjunctionEarlyStopTest, HintedStreamStaysCorrectBeyondHint) {
  GraphStore g = testing::RandomGraph(61, 20, {"a", "b", "c"}, 2.0);
  Conjunct conjunct = testing::Cj("APPROX (n0, a|(b.c), ?X)");

  EvaluatorOptions base;
  base.max_distance = 2;
  Result<PreparedConjunct> prepared =
      PrepareConjunct(conjunct, g, nullptr, base);
  ASSERT_TRUE(prepared.ok());
  ConjunctEvaluator baseline(&g, nullptr, &*prepared, base);
  auto expected = DrainUpTo(&baseline, 2);

  // Hint 3, but drain everything: early-stopped rounds must re-discover the
  // skipped answers later, with the stream staying sorted and complete.
  EvaluatorOptions hinted = base;
  hinted.top_k_hint = 3;
  auto stream = DisjunctionStream::Create(conjunct, &g, nullptr, hinted);
  ASSERT_TRUE(stream.ok());
  auto got = DrainUpTo(stream->get(), 2);
  EXPECT_EQ(got, expected);
}

TEST(EmptyGraphTest, AllModesBehave) {
  GraphBuilder builder;
  builder.GetOrAddNode("lonely");
  GraphStore g = std::move(builder).Finalize();
  QueryEngine engine(&g, nullptr);

  Result<Query> q = ParseQuery("(?X, ?Y) <- (?X, e, ?Y)");
  ASSERT_TRUE(q.ok());
  auto exact = engine.ExecuteTopK(*q, 0);
  ASSERT_TRUE(exact.ok());
  EXPECT_TRUE(exact->empty());

  Result<Query> qa = ParseQuery("(?X, ?Y) <- APPROX (?X, e, ?Y)");
  ASSERT_TRUE(qa.ok());
  auto approx = engine.ExecuteTopK(*qa, 0);
  ASSERT_TRUE(approx.ok());
  // Deleting `e` pairs the lonely node with itself at distance 1.
  ASSERT_EQ(approx->size(), 1u);
  EXPECT_EQ((*approx)[0].distance, 1);

  Result<Query> qs = ParseQuery("(?X, ?Y) <- (?X, e*, ?Y)");
  ASSERT_TRUE(qs.ok());
  auto star = engine.ExecuteTopK(*qs, 0);
  ASSERT_TRUE(star.ok());
  ASSERT_EQ(star->size(), 1u);  // (lonely, lonely) at 0
  EXPECT_EQ((*star)[0].distance, 0);
}

TEST(EmptyGraphTest, TrulyEmptyGraph) {
  GraphBuilder builder;
  GraphStore g = std::move(builder).Finalize();
  QueryEngine engine(&g, nullptr);
  Result<Query> q = ParseQuery("(?X, ?Y) <- APPROX (?X, e+, ?Y)");
  ASSERT_TRUE(q.ok());
  auto answers = engine.ExecuteTopK(*q, 0);
  ASSERT_TRUE(answers.ok());
  EXPECT_TRUE(answers->empty());
}

}  // namespace
}  // namespace omega
