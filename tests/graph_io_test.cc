#include "store/graph_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "store/graph_builder.h"
#include "test_util.h"

namespace omega {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(GraphIoTest, RoundTrip) {
  GraphBuilder builder;
  const NodeId a = builder.GetOrAddNode("a node with spaces");
  const NodeId b = builder.GetOrAddNode("b");
  const NodeId k = builder.GetOrAddNode("Klass");
  ASSERT_TRUE(builder.AddEdge(a, *builder.InternLabel("knows"), b).ok());
  ASSERT_TRUE(builder.AddTypeEdge(a, k).ok());
  GraphStore original = std::move(builder).Finalize();

  const std::string path = TempPath("roundtrip.graph");
  ASSERT_TRUE(SaveGraph(original, path).ok());
  Result<GraphStore> loaded = LoadGraph(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->NumNodes(), original.NumNodes());
  EXPECT_EQ(loaded->NumEdges(), original.NumEdges());
  const NodeId la = *loaded->FindNode("a node with spaces");
  const NodeId lb = *loaded->FindNode("b");
  const LabelId knows = *loaded->labels().Find("knows");
  EXPECT_TRUE(loaded->HasEdge(la, knows, lb));
  EXPECT_EQ(loaded->TypeNeighbors(la, Direction::kOutgoing).size(), 1u);
}

TEST(GraphIoTest, MissingFileIsNotFound) {
  Result<GraphStore> r = LoadGraph(TempPath("does_not_exist.graph"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(GraphIoTest, RejectsWrongMagic) {
  const std::string path = TempPath("bad_magic.graph");
  std::ofstream(path) << "not-a-graph\n";
  Result<GraphStore> r = LoadGraph(path);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(GraphIoTest, RejectsTruncatedFile) {
  const std::string path = TempPath("truncated.graph");
  std::ofstream(path) << "omega-graph-v1\nlabels 3\ntype\n";
  Result<GraphStore> r = LoadGraph(path);
  ASSERT_FALSE(r.ok());
}

TEST(GraphIoTest, RejectsBadEdgeLine) {
  const std::string path = TempPath("bad_edge.graph");
  std::ofstream(path) << "omega-graph-v1\nlabels 1\ntype\nnodes 1\nx\n"
                      << "edges 1\n0\tnot_a_number\t0\n";
  Result<GraphStore> r = LoadGraph(path);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(GraphIoTest, RejectsEdgeLabelOutOfRange) {
  const std::string path = TempPath("bad_label.graph");
  std::ofstream(path) << "omega-graph-v1\nlabels 1\ntype\nnodes 2\nx\ny\n"
                      << "edges 1\n0\t7\t1\n";
  Result<GraphStore> r = LoadGraph(path);
  ASSERT_FALSE(r.ok());
}

TEST(GraphIoTest, RoundTripLargerRandomGraph) {
  GraphStore original = testing::RandomGraph(99, 60, {"a", "b", "c"}, 3.0);
  const std::string path = TempPath("random.graph");
  ASSERT_TRUE(SaveGraph(original, path).ok());
  Result<GraphStore> loaded = LoadGraph(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumNodes(), original.NumNodes());
  EXPECT_EQ(loaded->NumEdges(), original.NumEdges());
  // Spot-check adjacency equality on every node for one label.
  const LabelId l = *original.labels().Find("b");
  const LabelId ll = *loaded->labels().Find("b");
  for (NodeId n = 0; n < original.NumNodes(); ++n) {
    auto a = original.Neighbors(n, l, Direction::kOutgoing);
    auto b = loaded->Neighbors(n, ll, Direction::kOutgoing);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
  }
}

}  // namespace
}  // namespace omega
