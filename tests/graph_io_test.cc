#include "store/graph_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "store/graph_builder.h"
#include "test_util.h"

namespace omega {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(GraphIoTest, RoundTrip) {
  GraphBuilder builder;
  const NodeId a = builder.GetOrAddNode("a node with spaces");
  const NodeId b = builder.GetOrAddNode("b");
  const NodeId k = builder.GetOrAddNode("Klass");
  ASSERT_TRUE(builder.AddEdge(a, *builder.InternLabel("knows"), b).ok());
  ASSERT_TRUE(builder.AddTypeEdge(a, k).ok());
  GraphStore original = std::move(builder).Finalize();

  const std::string path = TempPath("roundtrip.graph");
  ASSERT_TRUE(SaveGraph(original, path).ok());
  Result<GraphStore> loaded = LoadGraph(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->NumNodes(), original.NumNodes());
  EXPECT_EQ(loaded->NumEdges(), original.NumEdges());
  const NodeId la = *loaded->FindNode("a node with spaces");
  const NodeId lb = *loaded->FindNode("b");
  const LabelId knows = *loaded->labels().Find("knows");
  EXPECT_TRUE(loaded->HasEdge(la, knows, lb));
  EXPECT_EQ(loaded->TypeNeighbors(la, Direction::kOutgoing).size(), 1u);
}

TEST(GraphIoTest, MissingFileIsNotFound) {
  Result<GraphStore> r = LoadGraph(TempPath("does_not_exist.graph"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(GraphIoTest, RejectsWrongMagic) {
  const std::string path = TempPath("bad_magic.graph");
  std::ofstream(path) << "not-a-graph\n";
  Result<GraphStore> r = LoadGraph(path);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(GraphIoTest, RejectsTruncatedFile) {
  const std::string path = TempPath("truncated.graph");
  std::ofstream(path) << "omega-graph-v1\nlabels 3\ntype\n";
  Result<GraphStore> r = LoadGraph(path);
  ASSERT_FALSE(r.ok());
}

TEST(GraphIoTest, RejectsBadEdgeLine) {
  const std::string path = TempPath("bad_edge.graph");
  std::ofstream(path) << "omega-graph-v1\nlabels 1\ntype\nnodes 1\nx\n"
                      << "edges 1\n0\tnot_a_number\t0\n";
  Result<GraphStore> r = LoadGraph(path);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(GraphIoTest, RejectsEdgeLabelOutOfRange) {
  const std::string path = TempPath("bad_label.graph");
  std::ofstream(path) << "omega-graph-v1\nlabels 1\ntype\nnodes 2\nx\ny\n"
                      << "edges 1\n0\t7\t1\n";
  Result<GraphStore> r = LoadGraph(path);
  ASSERT_FALSE(r.ok());
}

// Malformed-input table: each row is a complete file body, the expected
// error fragment, and the 1-based line the parser must blame. The hardened
// loader rejects everything here *before* it can corrupt the builder
// (duplicate ids shifting the id space, trailing-garbage numbers, ids
// beyond the declared sections, truncation mid-section).
struct MalformedCase {
  const char* name;
  const char* content;
  const char* expected_error;  // substring of the status message
  int line;                    // expected "line N:" tag; 0 = untagged
};

class GraphIoMalformedTest : public ::testing::TestWithParam<MalformedCase> {};

TEST_P(GraphIoMalformedTest, RejectedWithLineNumberedError) {
  const MalformedCase& c = GetParam();
  const std::string path = TempPath(std::string("malformed_") + c.name);
  std::ofstream(path) << c.content;
  Result<GraphStore> r = LoadGraph(path);
  ASSERT_FALSE(r.ok()) << c.name;
  EXPECT_TRUE(r.status().IsInvalidArgument()) << r.status().ToString();
  EXPECT_NE(r.status().message().find(c.expected_error), std::string::npos)
      << c.name << ": " << r.status().ToString();
  if (c.line > 0) {
    const std::string tag = "line " + std::to_string(c.line) + ":";
    EXPECT_NE(r.status().message().find(tag), std::string::npos)
        << c.name << ": " << r.status().ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Table, GraphIoMalformedTest,
    ::testing::Values(
        MalformedCase{"bad_label_count",
                      "omega-graph-v1\nlabels x\n",
                      "expected 'labels <count>'", 2},
        MalformedCase{"huge_label_count",
                      "omega-graph-v1\nlabels 99999999999\n",
                      "exceeds the 32-bit id space", 2},
        MalformedCase{"first_label_not_type",
                      "omega-graph-v1\nlabels 1\nknows\n",
                      "label id 0 must be 'type'", 3},
        MalformedCase{"duplicate_label",
                      "omega-graph-v1\nlabels 3\ntype\nknows\nknows\n",
                      "duplicate label name 'knows'", 5},
        MalformedCase{"reserved_label",
                      "omega-graph-v1\nlabels 2\ntype\nsc\n",
                      "reserved", 4},
        MalformedCase{"truncated_labels",
                      "omega-graph-v1\nlabels 3\ntype\nknows\n",
                      "unexpected end of file in label section", 5},
        MalformedCase{"duplicate_node",
                      "omega-graph-v1\nlabels 1\ntype\nnodes 2\na\na\n",
                      "duplicate node label 'a'", 6},
        MalformedCase{"truncated_nodes",
                      "omega-graph-v1\nlabels 1\ntype\nnodes 3\na\nb\n",
                      "unexpected end of file in node section", 7},
        MalformedCase{"missing_edges_header",
                      "omega-graph-v1\nlabels 1\ntype\nnodes 1\na\n",
                      "expected 'edges'", 6},
        MalformedCase{"edge_field_count",
                      "omega-graph-v1\nlabels 1\ntype\nnodes 1\na\n"
                      "edges 1\n0\t0\n",
                      "expected '<src>", 7},
        MalformedCase{"edge_trailing_garbage_number",
                      "omega-graph-v1\nlabels 1\ntype\nnodes 2\na\nb\n"
                      "edges 1\n0\t0\t1junk\n",
                      "malformed edge ids", 8},
        MalformedCase{"edge_negative_id",
                      "omega-graph-v1\nlabels 1\ntype\nnodes 2\na\nb\n"
                      "edges 1\n-1\t0\t1\n",
                      "malformed edge ids", 8},
        MalformedCase{"edge_src_out_of_range",
                      "omega-graph-v1\nlabels 1\ntype\nnodes 2\na\nb\n"
                      "edges 1\n7\t0\t1\n",
                      "edge endpoint id out of range", 8},
        MalformedCase{"edge_label_out_of_range",
                      "omega-graph-v1\nlabels 1\ntype\nnodes 2\na\nb\n"
                      "edges 1\n0\t5\t1\n",
                      "edge label id out of range", 8},
        MalformedCase{"truncated_edges",
                      "omega-graph-v1\nlabels 1\ntype\nnodes 2\na\nb\n"
                      "edges 2\n0\t0\t1\n",
                      "unexpected end of file in edge section", 9},
        MalformedCase{"trailing_content",
                      "omega-graph-v1\nlabels 1\ntype\nnodes 2\na\nb\n"
                      "edges 1\n0\t0\t1\n0\t0\t1\n",
                      "trailing content after the edge section", 9}),
    [](const ::testing::TestParamInfo<MalformedCase>& info) {
      return info.param.name;
    });

TEST(GraphIoTest, RoundTripLargerRandomGraph) {
  GraphStore original = testing::RandomGraph(99, 60, {"a", "b", "c"}, 3.0);
  const std::string path = TempPath("random.graph");
  ASSERT_TRUE(SaveGraph(original, path).ok());
  Result<GraphStore> loaded = LoadGraph(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumNodes(), original.NumNodes());
  EXPECT_EQ(loaded->NumEdges(), original.NumEdges());
  // Spot-check adjacency equality on every node for one label.
  const LabelId l = *original.labels().Find("b");
  const LabelId ll = *loaded->labels().Find("b");
  for (NodeId n = 0; n < original.NumNodes(); ++n) {
    auto a = original.Neighbors(n, l, Direction::kOutgoing);
    auto b = loaded->Neighbors(n, ll, Direction::kOutgoing);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
  }
}

}  // namespace
}  // namespace omega
