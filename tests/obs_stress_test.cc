// Observability concurrency stress: client threads fire mixed queries
// (some carrying per-request TraceRecorders) at a QueryService with a
// private MetricsRegistry while one thread hammers SwapDataset and another
// continuously polls RenderText() and stats() — every shared counter,
// gauge, histogram cell, trace span vector, and the epoch drain tracker is
// exercised under full concurrency. This is the ThreadSanitizer gate for
// the obs layer: a torn histogram bucket, an unguarded span append, or a
// drain-tracker race shows up here. At the end the registry's monotonic
// totals must reconcile exactly with what the clients did.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "rpq/query_parser.h"
#include "service/query_service.h"
#include "test_util.h"

namespace omega {
namespace {

using omega::testing::Qy;

GraphStore StressGraph(uint64_t seed) {
  GraphBuilder builder;
  Rng rng(seed);
  constexpr size_t kPeople = 50;
  constexpr size_t kOrgs = 10;
  std::vector<std::string> people, orgs;
  for (size_t i = 0; i < kPeople; ++i) {
    people.push_back("p" + std::to_string(i));
  }
  for (size_t i = 0; i < kOrgs; ++i) {
    orgs.push_back("o" + std::to_string(i));
  }
  for (size_t i = 0; i < kPeople; ++i) {
    (void)builder.AddEdge(people[i], "knows",
                          people[rng.NextBounded(kPeople)]);
    (void)builder.AddEdge(people[i], "knows",
                          people[rng.NextBounded(kPeople)]);
    (void)builder.AddEdge(people[i], "worksAt", orgs[rng.NextBounded(kOrgs)]);
  }
  return std::move(builder).Finalize();
}

TEST(ObsStressTest, MetricsTracesAndSwapsUnderConcurrency) {
  std::shared_ptr<const Dataset> dataset_a =
      Dataset::FromParts(StressGraph(11), std::nullopt);
  std::shared_ptr<const Dataset> dataset_b =
      Dataset::FromParts(StressGraph(23), std::nullopt);

  std::vector<Query> workload;
  for (const char* text : {
           "(?X) <- (?X, knows, ?Y)",
           "(?X, ?Z) <- (?X, knows, ?Y), (?Y, knows, ?Z)",
           "(?X) <- APPROX (?X, knows.worksAt, ?Y)",
           "(?X, ?O) <- (?X, knows, ?Y), (?Y, worksAt, ?O)",
       }) {
    workload.push_back(Qy(text));
  }

  MetricsRegistry registry;
  QueryServiceOptions options;
  options.num_workers = 4;
  options.max_queue = 512;
  options.metrics = &registry;
  QueryService service(dataset_a, options);

  constexpr size_t kClients = 6;
  constexpr size_t kRequestsPerClient = 25;
  constexpr size_t kSwaps = 30;
  std::atomic<size_t> ok{0}, failures{0}, traced_sends{0};
  std::atomic<size_t> spans_seen{0};
  std::atomic<bool> stop_poller{false};

  // Swap storm: epoch retire/drain accounting races query pins.
  std::thread swapper([&] {
    for (size_t s = 0; s < kSwaps; ++s) {
      EXPECT_TRUE(
          service.SwapDataset(s % 2 == 0 ? dataset_b : dataset_a).ok());
      std::this_thread::yield();
    }
  });

  // Metrics poller: renders the full exposition and samples stats() while
  // every instrument is being written.
  std::thread poller([&] {
    size_t renders = 0;
    while (!stop_poller.load(std::memory_order_acquire)) {
      const std::string text = registry.RenderText();
      EXPECT_NE(text.find("omega_service_submitted_total"),
                std::string::npos);
      const ServiceStats stats = service.stats();
      EXPECT_LE(stats.epochs_drained, stats.epochs_retired);
      ++renders;
      std::this_thread::yield();
    }
    EXPECT_GT(renders, 0u);
  });

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t r = 0; r < kRequestsPerClient; ++r) {
        QueryRequest request;
        request.query = Clone(workload[(c * 3 + r) % workload.size()]);
        request.top_k = 10;
        request.bypass_cache = (c + r) % 3 == 0;
        // Every other request is traced: span appends from the client
        // thread (epoch_pin, cache_lookup) race the worker's (queue_wait,
        // execute, operator totals) on the same recorder.
        std::unique_ptr<TraceRecorder> trace;
        if ((c + r) % 2 == 0) {
          trace = std::make_unique<TraceRecorder>();
          ++traced_sends;
        }
        request.trace = trace.get();
        const QueryResponse response = service.Execute(std::move(request));
        if (response.status.ok()) {
          ++ok;
        } else {
          ++failures;
        }
        if (trace != nullptr) {
          const size_t spans = trace->NumSpans();
          EXPECT_GE(spans, 2u);  // at least epoch_pin + one service span
          spans_seen.fetch_add(spans);
          EXPECT_NE(trace->ToJson().find("\"spans\":["), std::string::npos);
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  swapper.join();
  stop_poller.store(true, std::memory_order_release);
  poller.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(ok.load(), kClients * kRequestsPerClient);
  EXPECT_GT(spans_seen.load(), traced_sends.load());

  // Reconciliation: the registry's monotonic totals equal what the clients
  // actually did, and agree with the lock-guarded ServiceStats.
  const ServiceStats stats = service.stats();
  const uint64_t total = kClients * kRequestsPerClient;
  EXPECT_EQ(registry.GetCounter("omega_service_submitted_total")->Value(),
            total);
  const uint64_t completed_total =
      registry.GetCounter("omega_service_completed_total", "",
                          "status=\"ok\"")
          ->Value() +
      registry
          .GetCounter("omega_service_completed_total", "",
                      "status=\"cancelled\"")
          ->Value() +
      registry
          .GetCounter("omega_service_completed_total", "",
                      "status=\"deadline\"")
          ->Value() +
      registry
          .GetCounter("omega_service_completed_total", "", "status=\"error\"")
          ->Value();
  EXPECT_EQ(completed_total, total);
  EXPECT_EQ(stats.submitted, total);
  EXPECT_EQ(registry.GetCounter("omega_service_swaps_total")->Value(), kSwaps);
  EXPECT_EQ(stats.dataset_swaps, kSwaps);
  EXPECT_EQ(stats.epochs_retired, kSwaps);
  // Per-class execution observations match the executed (non-hit) count.
  uint64_t exec_observed = 0;
  for (const char* cls :
       {"class=\"EXACT\"", "class=\"APPROX\"", "class=\"RELAX\"",
        "class=\"MIXED\""}) {
    exec_observed +=
        registry.GetHistogram("omega_service_exec_us", "", cls)->Count();
  }
  uint64_t executed = 0;
  for (const ClassAggregate& agg : stats.per_class) executed += agg.executed;
  EXPECT_EQ(exec_observed, executed);
  // Cache totals: every non-bypass submission probed its epoch's cache at
  // Submit and counted a hit or a miss (worker re-probes may add further
  // hits, never misses), so the monotonic totals bound the probe count
  // from below.
  size_t non_bypass = 0;
  for (size_t c = 0; c < kClients; ++c) {
    for (size_t r = 0; r < kRequestsPerClient; ++r) {
      if ((c + r) % 3 != 0) ++non_bypass;
    }
  }
  EXPECT_GE(registry.GetCounter("omega_cache_hits_total")->Value() +
                registry.GetCounter("omega_cache_misses_total")->Value(),
            non_bypass);
  EXPECT_GT(registry.GetCounter("omega_cache_misses_total")->Value(), 0u);

  // All retired epochs eventually drain once the tickets are gone.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (service.stats().epochs_drained < kSwaps &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(service.stats().epochs_drained, kSwaps);
  EXPECT_EQ(registry.GetHistogram("omega_service_epoch_drain_us")->Count(),
            kSwaps);
}

}  // namespace
}  // namespace omega
