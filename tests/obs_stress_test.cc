// Observability concurrency stress: client threads fire mixed queries
// (some carrying per-request TraceRecorders) at a QueryService with a
// private MetricsRegistry while one thread hammers SwapDataset and another
// continuously polls RenderText() and stats() — every shared counter,
// gauge, histogram cell, trace span vector, and the epoch drain tracker is
// exercised under full concurrency. This is the ThreadSanitizer gate for
// the obs layer: a torn histogram bucket, an unguarded span append, or a
// drain-tracker race shows up here. At the end the registry's monotonic
// totals must reconcile exactly with what the clients did.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/admin_server.h"
#include "net/ops_routes.h"
#include "obs/event_log.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rpq/query_parser.h"
#include "service/query_service.h"
#include "test_util.h"

namespace omega {
namespace {

using omega::testing::Qy;

GraphStore StressGraph(uint64_t seed) {
  GraphBuilder builder;
  Rng rng(seed);
  constexpr size_t kPeople = 50;
  constexpr size_t kOrgs = 10;
  std::vector<std::string> people, orgs;
  for (size_t i = 0; i < kPeople; ++i) {
    people.push_back("p" + std::to_string(i));
  }
  for (size_t i = 0; i < kOrgs; ++i) {
    orgs.push_back("o" + std::to_string(i));
  }
  for (size_t i = 0; i < kPeople; ++i) {
    (void)builder.AddEdge(people[i], "knows",
                          people[rng.NextBounded(kPeople)]);
    (void)builder.AddEdge(people[i], "knows",
                          people[rng.NextBounded(kPeople)]);
    (void)builder.AddEdge(people[i], "worksAt", orgs[rng.NextBounded(kOrgs)]);
  }
  return std::move(builder).Finalize();
}

TEST(ObsStressTest, MetricsTracesAndSwapsUnderConcurrency) {
  std::shared_ptr<const Dataset> dataset_a =
      Dataset::FromParts(StressGraph(11), std::nullopt);
  std::shared_ptr<const Dataset> dataset_b =
      Dataset::FromParts(StressGraph(23), std::nullopt);

  std::vector<Query> workload;
  for (const char* text : {
           "(?X) <- (?X, knows, ?Y)",
           "(?X, ?Z) <- (?X, knows, ?Y), (?Y, knows, ?Z)",
           "(?X) <- APPROX (?X, knows.worksAt, ?Y)",
           "(?X, ?O) <- (?X, knows, ?Y), (?Y, worksAt, ?O)",
       }) {
    workload.push_back(Qy(text));
  }

  MetricsRegistry registry;
  QueryServiceOptions options;
  options.num_workers = 4;
  options.max_queue = 512;
  options.metrics = &registry;
  QueryService service(dataset_a, options);

  constexpr size_t kClients = 6;
  constexpr size_t kRequestsPerClient = 25;
  constexpr size_t kSwaps = 30;
  std::atomic<size_t> ok{0}, failures{0}, traced_sends{0};
  std::atomic<size_t> spans_seen{0};
  std::atomic<bool> stop_poller{false};

  // Swap storm: epoch retire/drain accounting races query pins.
  std::thread swapper([&] {
    for (size_t s = 0; s < kSwaps; ++s) {
      EXPECT_TRUE(
          service.SwapDataset(s % 2 == 0 ? dataset_b : dataset_a).ok());
      std::this_thread::yield();
    }
  });

  // Metrics poller: renders the full exposition and samples stats() while
  // every instrument is being written.
  std::thread poller([&] {
    size_t renders = 0;
    while (!stop_poller.load(std::memory_order_acquire)) {
      const std::string text = registry.RenderText();
      EXPECT_NE(text.find("omega_service_submitted_total"),
                std::string::npos);
      const ServiceStats stats = service.stats();
      EXPECT_LE(stats.epochs_drained, stats.epochs_retired);
      ++renders;
      std::this_thread::yield();
    }
    EXPECT_GT(renders, 0u);
  });

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t r = 0; r < kRequestsPerClient; ++r) {
        QueryRequest request;
        request.query = Clone(workload[(c * 3 + r) % workload.size()]);
        request.top_k = 10;
        request.bypass_cache = (c + r) % 3 == 0;
        // Every other request is traced: span appends from the client
        // thread (epoch_pin, cache_lookup) race the worker's (queue_wait,
        // execute, operator totals) on the same recorder.
        std::unique_ptr<TraceRecorder> trace;
        if ((c + r) % 2 == 0) {
          trace = std::make_unique<TraceRecorder>();
          ++traced_sends;
        }
        request.trace = trace.get();
        const QueryResponse response = service.Execute(std::move(request));
        if (response.status.ok()) {
          ++ok;
        } else {
          ++failures;
        }
        if (trace != nullptr) {
          const size_t spans = trace->NumSpans();
          EXPECT_GE(spans, 2u);  // at least epoch_pin + one service span
          spans_seen.fetch_add(spans);
          EXPECT_NE(trace->ToJson().find("\"spans\":["), std::string::npos);
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  swapper.join();
  stop_poller.store(true, std::memory_order_release);
  poller.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(ok.load(), kClients * kRequestsPerClient);
  EXPECT_GT(spans_seen.load(), traced_sends.load());

  // Reconciliation: the registry's monotonic totals equal what the clients
  // actually did, and agree with the lock-guarded ServiceStats.
  const ServiceStats stats = service.stats();
  const uint64_t total = kClients * kRequestsPerClient;
  EXPECT_EQ(registry.GetCounter("omega_service_submitted_total")->Value(),
            total);
  const uint64_t completed_total =
      registry.GetCounter("omega_service_completed_total", "",
                          "status=\"ok\"")
          ->Value() +
      registry
          .GetCounter("omega_service_completed_total", "",
                      "status=\"cancelled\"")
          ->Value() +
      registry
          .GetCounter("omega_service_completed_total", "",
                      "status=\"deadline\"")
          ->Value() +
      registry
          .GetCounter("omega_service_completed_total", "", "status=\"error\"")
          ->Value();
  EXPECT_EQ(completed_total, total);
  EXPECT_EQ(stats.submitted, total);
  EXPECT_EQ(registry.GetCounter("omega_service_swaps_total")->Value(), kSwaps);
  EXPECT_EQ(stats.dataset_swaps, kSwaps);
  EXPECT_EQ(stats.epochs_retired, kSwaps);
  // Per-class execution observations match the executed (non-hit) count.
  uint64_t exec_observed = 0;
  for (const char* cls :
       {"class=\"EXACT\"", "class=\"APPROX\"", "class=\"RELAX\"",
        "class=\"MIXED\""}) {
    exec_observed +=
        registry.GetHistogram("omega_service_exec_us", "", cls)->Count();
  }
  uint64_t executed = 0;
  for (const ClassAggregate& agg : stats.per_class) executed += agg.executed;
  EXPECT_EQ(exec_observed, executed);
  // Cache totals: every non-bypass submission probed its epoch's cache at
  // Submit and counted a hit or a miss (worker re-probes may add further
  // hits, never misses), so the monotonic totals bound the probe count
  // from below.
  size_t non_bypass = 0;
  for (size_t c = 0; c < kClients; ++c) {
    for (size_t r = 0; r < kRequestsPerClient; ++r) {
      if ((c + r) % 3 != 0) ++non_bypass;
    }
  }
  EXPECT_GE(registry.GetCounter("omega_cache_hits_total")->Value() +
                registry.GetCounter("omega_cache_misses_total")->Value(),
            non_bypass);
  EXPECT_GT(registry.GetCounter("omega_cache_misses_total")->Value(), 0u);

  // All retired epochs eventually drain once the tickets are gone.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (service.stats().epochs_drained < kSwaps &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(service.stats().epochs_drained, kSwaps);
  EXPECT_EQ(registry.GetHistogram("omega_service_epoch_drain_us")->Count(),
            kSwaps);
}

/// Blocking loopback GET returning the full raw response (the admin server
/// closes the connection after each request).
std::string ScrapeOnce(uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string reply;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    reply.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return reply;
}

// The ops-plane TSan gate: real HTTP scrapes of /metrics, /tracez, /statusz
// and /eventz hammer the admin server while client threads (half traced)
// drive the service, a swap storm retires 30 epochs, and the flight
// recorder ingests every completion. Exercises every cross-thread seam the
// admin plane adds: handler-pool dispatch, lock-free route reads, registry
// renders racing instrument writes, flight-recorder ring appends racing
// ToJson copies, and event-journal appends racing /eventz renders.
TEST(ObsStressTest, ScrapeHammerDuringSwapStorm) {
  std::shared_ptr<const Dataset> dataset_a =
      Dataset::FromParts(StressGraph(31), std::nullopt);
  std::shared_ptr<const Dataset> dataset_b =
      Dataset::FromParts(StressGraph(47), std::nullopt);

  std::vector<Query> workload;
  for (const char* text : {
           "(?X) <- (?X, knows, ?Y)",
           "(?X, ?O) <- (?X, knows, ?Y), (?Y, worksAt, ?O)",
       }) {
    workload.push_back(Qy(text));
  }

  MetricsRegistry registry;
  FlightRecorderOptions recorder_options;
  recorder_options.slow_threshold_us = 0;  // everything lands in the
                                           // reservoir: max contention
  FlightRecorder recorder(recorder_options);
  EventLog events;

  QueryServiceOptions options;
  options.num_workers = 4;
  options.max_queue = 512;
  options.metrics = &registry;
  options.flight_recorder = &recorder;
  options.events = &events;
  QueryService service(dataset_a, options);

  AdminServerOptions server_options;
  server_options.num_handlers = 3;
  server_options.metrics = &registry;
  AdminServer server(server_options);
  OpsPlaneOptions ops;
  ops.metrics = &registry;
  ops.recorder = &recorder;
  ops.events = &events;
  ops.service = &service;
  RegisterOpsRoutes(&server, ops);
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.port();

  constexpr size_t kClients = 4;
  constexpr size_t kRequestsPerClient = 25;
  constexpr size_t kSwaps = 30;
  constexpr size_t kScrapers = 3;
  std::atomic<size_t> ok{0}, failures{0}, scrapes{0}, scrape_failures{0};
  std::atomic<bool> stop_scrapers{false};

  std::thread swapper([&] {
    for (size_t s = 0; s < kSwaps; ++s) {
      EXPECT_TRUE(
          service.SwapDataset(s % 2 == 0 ? dataset_b : dataset_a).ok());
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> scrapers;
  for (size_t s = 0; s < kScrapers; ++s) {
    scrapers.emplace_back([&, s] {
      const char* paths[] = {"/metrics", "/tracez", "/statusz", "/eventz"};
      size_t i = s;  // offset so the scrapers interleave paths
      while (!stop_scrapers.load(std::memory_order_acquire)) {
        const std::string reply = ScrapeOnce(port, paths[i++ % 4]);
        if (reply.find("HTTP/1.1 200 OK") != std::string::npos) {
          ++scrapes;
        } else {
          ++scrape_failures;
        }
      }
    });
  }

  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t r = 0; r < kRequestsPerClient; ++r) {
        QueryRequest request;
        request.query = Clone(workload[(c + r) % workload.size()]);
        request.top_k = 10;
        request.bypass_cache = (c + r) % 3 == 0;
        std::unique_ptr<TraceRecorder> trace;
        if ((c + r) % 2 == 0) trace = std::make_unique<TraceRecorder>();
        request.trace = trace.get();
        if (service.Execute(std::move(request)).status.ok()) {
          ++ok;
        } else {
          ++failures;
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  swapper.join();
  // Keep scraping a moment after the storm so renders also race the
  // post-storm drain events, then stop.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stop_scrapers.store(true, std::memory_order_release);
  for (std::thread& scraper : scrapers) scraper.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(ok.load(), kClients * kRequestsPerClient);
  EXPECT_GT(scrapes.load(), 0u);
  EXPECT_EQ(scrape_failures.load(), 0u);
  EXPECT_EQ(recorder.recorded_total(), kClients * kRequestsPerClient);
  EXPECT_EQ(recorder.slow_total(), kClients * kRequestsPerClient);
  EXPECT_GE(events.recorded_total(), kSwaps);  // one event per swap at least

  // A final scrape after the dust settles renders consistent bodies.
  const std::string metrics = ScrapeOnce(port, "/metrics");
  EXPECT_NE(metrics.find("omega_service_submitted_total"),
            std::string::npos);
  EXPECT_NE(metrics.find("omega_admin_requests_total"), std::string::npos);
  const std::string tracez = ScrapeOnce(port, "/tracez");
  EXPECT_NE(tracez.find("\"recent\":["), std::string::npos);
  const std::string eventz = ScrapeOnce(port, "/eventz");
  EXPECT_NE(eventz.find("dataset swap published"), std::string::npos);

  server.Shutdown();
  EXPECT_FALSE(server.running());
}

}  // namespace
}  // namespace omega
