// Cross-module integration: parse -> compile -> evaluate pipelines over the
// generated case-study datasets, exercising the same paths as the paper's
// performance study, plus ontology IO round-trips feeding RELAX evaluation.
#include <gtest/gtest.h>

#include "datasets/l4all.h"
#include "datasets/query_sets.h"
#include "datasets/yago.h"
#include "eval/query_engine.h"
#include "ontology/ontology_io.h"
#include "rpq/query_parser.h"
#include "store/graph_io.h"

namespace omega {
namespace {

const L4AllDataset& TinyL4All() {
  static const L4AllDataset* dataset = [] {
    L4AllOptions options;
    options.num_timelines = 60;
    return new L4AllDataset(GenerateL4All(options));
  }();
  return *dataset;
}

TEST(IntegrationTest, EveryL4AllQueryRunsInEveryMode) {
  const L4AllDataset& d = TinyL4All();
  QueryEngine engine(&d.graph, &d.ontology);
  QueryEngineOptions options;
  options.evaluator.max_live_tuples = 5000000;
  for (const NamedQuery& nq : L4AllQuerySet()) {
    for (ConjunctMode mode : {ConjunctMode::kExact, ConjunctMode::kApprox,
                              ConjunctMode::kRelax}) {
      Result<Query> q = MakeSingleConjunctQuery(nq.conjunct, mode);
      ASSERT_TRUE(q.ok()) << nq.name;
      auto answers = engine.ExecuteTopK(*q, 25, options);
      EXPECT_TRUE(answers.ok())
          << nq.name << "/" << ConjunctModeToString(mode) << ": "
          << answers.status().ToString();
      if (!answers.ok()) continue;
      Cost last = 0;
      for (const QueryAnswer& a : *answers) {
        EXPECT_GE(a.distance, last) << nq.name;
        last = a.distance;
      }
    }
  }
}

TEST(IntegrationTest, ApproxSupersetsExactAnswers) {
  // Every exact answer must reappear under APPROX at distance 0.
  const L4AllDataset& d = TinyL4All();
  QueryEngine engine(&d.graph, &d.ontology);
  for (const NamedQuery& nq : L4AllQuerySet()) {
    if (nq.name == "Q4" || nq.name == "Q5" || nq.name == "Q6" ||
        nq.name == "Q7") {
      continue;  // large variable-variable result sets; covered elsewhere
    }
    Result<Query> exact_q =
        MakeSingleConjunctQuery(nq.conjunct, ConjunctMode::kExact);
    Result<Query> approx_q =
        MakeSingleConjunctQuery(nq.conjunct, ConjunctMode::kApprox);
    ASSERT_TRUE(exact_q.ok() && approx_q.ok());
    auto exact = engine.ExecuteTopK(*exact_q, 15);
    ASSERT_TRUE(exact.ok());
    // Fetch enough approx answers to cover the exact ones.
    auto approx = engine.ExecuteTopK(*approx_q, 500);
    ASSERT_TRUE(approx.ok());
    for (const QueryAnswer& e : *exact) {
      bool found = false;
      for (const QueryAnswer& a : *approx) {
        if (a.bindings == e.bindings && a.distance == 0) found = true;
      }
      EXPECT_TRUE(found) << nq.name;
    }
  }
}

TEST(IntegrationTest, GraphAndOntologyRoundTripPreserveRelaxAnswers) {
  const L4AllDataset& d = TinyL4All();
  const std::string graph_path = ::testing::TempDir() + "/l4all.graph";
  const std::string ontology_path = ::testing::TempDir() + "/l4all.ontology";
  ASSERT_TRUE(SaveGraph(d.graph, graph_path).ok());
  ASSERT_TRUE(SaveOntology(d.ontology, ontology_path).ok());

  Result<GraphStore> graph = LoadGraph(graph_path);
  ASSERT_TRUE(graph.ok());
  Result<Ontology> ontology = LoadOntology(ontology_path);
  ASSERT_TRUE(ontology.ok()) << ontology.status().ToString();

  Result<Query> q = MakeSingleConjunctQuery("(Librarians, type-, ?X)",
                                            ConjunctMode::kRelax);
  ASSERT_TRUE(q.ok());
  QueryEngine original(&d.graph, &d.ontology);
  QueryEngine reloaded(&*graph, &*ontology);
  auto a = original.ExecuteTopK(*q, 50);
  auto b = reloaded.ExecuteTopK(*q, 50);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    // Node ids survive the round trip (save/load preserves id order).
    EXPECT_EQ((*a)[i].distance, (*b)[i].distance);
  }
}

TEST(IntegrationTest, OptimisationsAgreeOnYagoQ9) {
  YagoOptions yopts;
  yopts.scale = 0.004;
  const YagoDataset d = GenerateYago(yopts);
  QueryEngine engine(&d.graph, &d.ontology);
  Result<Query> q = MakeSingleConjunctQuery(YagoQuerySet()[8].conjunct,
                                            ConjunctMode::kApprox);
  ASSERT_TRUE(q.ok());

  auto normalize = [](const std::vector<QueryAnswer>& answers) {
    std::set<std::pair<std::vector<NodeId>, Cost>> out;
    for (const QueryAnswer& a : answers) out.insert({a.bindings, a.distance});
    return out;
  };
  QueryEngineOptions base;
  base.evaluator.max_distance = 1;
  auto baseline = engine.ExecuteTopK(*q, 0, base);
  ASSERT_TRUE(baseline.ok());

  for (bool da : {false, true}) {
    for (bool disjunction : {false, true}) {
      QueryEngineOptions options = base;
      options.distance_aware = da;
      options.decompose_alternation = disjunction;
      auto got = engine.ExecuteTopK(*q, 0, options);
      ASSERT_TRUE(got.ok()) << da << disjunction;
      EXPECT_EQ(normalize(*got), normalize(*baseline))
          << "da=" << da << " disjunction=" << disjunction;
    }
  }
}

TEST(IntegrationTest, MultiConjunctAcrossModesOnL4All) {
  const L4AllDataset& d = TinyL4All();
  QueryEngine engine(&d.graph, &d.ontology);
  Result<Query> q = ParseQuery(
      "(?E, ?Next) <- RELAX (Librarians, type-.job-, ?E), "
      "(?E, next, ?Next)");
  ASSERT_TRUE(q.ok());
  auto answers = engine.ExecuteTopK(*q, 20);
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  Cost last = 0;
  for (const QueryAnswer& a : *answers) {
    EXPECT_GE(a.distance, last);
    last = a.distance;
    // ?E must actually have a next-edge to ?Next.
    const LabelId next = *d.graph.labels().Find("next");
    EXPECT_TRUE(d.graph.HasEdge(a.bindings[0], next, a.bindings[1]));
  }
}

TEST(IntegrationTest, BatchProtocolMatchesSingleShot) {
  // Pulling 10 batches of 10 yields the same prefix as one pull of 100.
  const L4AllDataset& d = TinyL4All();
  QueryEngine engine(&d.graph, &d.ontology);
  Result<Query> q = MakeSingleConjunctQuery(
      "(Librarians, type-, ?X)", ConjunctMode::kRelax);
  ASSERT_TRUE(q.ok());

  auto one_shot = engine.ExecuteTopK(*q, 100);
  ASSERT_TRUE(one_shot.ok());

  auto stream = engine.Execute(*q);
  ASSERT_TRUE(stream.ok());
  std::vector<QueryAnswer> batched;
  QueryAnswer a;
  for (int batch = 0; batch < 10; ++batch) {
    for (int i = 0; i < 10 && (*stream)->Next(&a); ++i) batched.push_back(a);
  }
  ASSERT_EQ(batched.size(), one_shot->size());
  for (size_t i = 0; i < batched.size(); ++i) {
    EXPECT_EQ(batched[i].distance, (*one_shot)[i].distance) << i;
  }
}

TEST(IntegrationTest, YagoExamplesEndToEnd) {
  YagoOptions yopts;
  yopts.scale = 0.004;
  const YagoDataset d = GenerateYago(yopts);
  QueryEngine engine(&d.graph, &d.ontology);
  const std::string example = "(UK, locatedIn-.gradFrom, ?X)";

  auto exact = engine.ExecuteTopK(
      *MakeSingleConjunctQuery(example, ConjunctMode::kExact), 10);
  ASSERT_TRUE(exact.ok());
  EXPECT_TRUE(exact->empty());  // Example 1

  auto approx = engine.ExecuteTopK(
      *MakeSingleConjunctQuery(example, ConjunctMode::kApprox), 10);
  ASSERT_TRUE(approx.ok());
  ASSERT_FALSE(approx->empty());  // Example 2
  EXPECT_EQ((*approx)[0].distance, 1);

  auto relax = engine.ExecuteTopK(
      *MakeSingleConjunctQuery(example, ConjunctMode::kRelax), 10);
  ASSERT_TRUE(relax.ok());
  ASSERT_FALSE(relax->empty());  // Example 3
  EXPECT_EQ((*relax)[0].distance, 1);
}

}  // namespace
}  // namespace omega
