// L4All explorer: generates the paper's first case-study dataset and runs
// any of the Fig. 4 queries in any mode.
//
//   $ ./build/examples/l4all_explorer                 # run the whole set
//   $ ./build/examples/l4all_explorer Q9 APPROX 20    # one query, top-20
//   $ ./build/examples/l4all_explorer Q10 RELAX 10 2  # ... on L2
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/timer.h"
#include "datasets/l4all.h"
#include "datasets/query_sets.h"
#include "eval/query_engine.h"

using namespace omega;

namespace {

void RunOne(const L4AllDataset& dataset, const NamedQuery& nq,
            ConjunctMode mode, size_t top_k) {
  Result<Query> query = MakeSingleConjunctQuery(nq.conjunct, mode);
  if (!query.ok()) {
    std::printf("%s: %s\n", nq.name.c_str(),
                query.status().ToString().c_str());
    return;
  }
  QueryEngine engine(&dataset.graph, &dataset.ontology);
  QueryEngineOptions options;
  options.evaluator.max_live_tuples = 20000000;

  Timer timer;
  Result<std::vector<QueryAnswer>> answers =
      engine.ExecuteTopK(*query, top_k, options);
  const double ms = timer.ElapsedMs();
  if (!answers.ok()) {
    std::printf("%-4s %-7s -> failed: %s\n", nq.name.c_str(),
                ConjunctModeToString(mode),
                answers.status().ToString().c_str());
    return;
  }
  std::printf("%-4s %-7s -> %3zu answers in %8.2f ms   %s\n",
              nq.name.c_str(), ConjunctModeToString(mode), answers->size(),
              ms, nq.conjunct.c_str());
  size_t shown = 0;
  for (const QueryAnswer& a : *answers) {
    if (++shown > 5) {
      std::printf("       ...\n");
      break;
    }
    std::printf("       d=%d", a.distance);
    for (NodeId n : a.bindings) {
      std::printf("  %s", std::string(dataset.graph.NodeLabel(n)).c_str());
    }
    std::printf("\n");
  }
}

ConjunctMode ParseMode(const std::string& text) {
  if (text == "APPROX") return ConjunctMode::kApprox;
  if (text == "RELAX") return ConjunctMode::kRelax;
  return ConjunctMode::kExact;
}

}  // namespace

int main(int argc, char** argv) {
  const int level = argc > 4 ? std::atoi(argv[4]) : 1;
  std::printf("Generating L4All %s ...\n", L4AllScaleName(level).c_str());
  const L4AllDataset dataset = GenerateL4All(L4AllScalePreset(level));
  std::printf("  %zu nodes, %zu edges\n\n", dataset.graph.NumNodes(),
              dataset.graph.NumEdges());

  if (argc > 1) {
    const std::string name = argv[1];
    const ConjunctMode mode = ParseMode(argc > 2 ? argv[2] : "EXACT");
    const size_t top_k = argc > 3 ? static_cast<size_t>(std::atoi(argv[3]))
                                  : 10;
    for (const NamedQuery& nq : L4AllQuerySet()) {
      if (nq.name == name) {
        RunOne(dataset, nq, mode, top_k);
        return 0;
      }
    }
    std::printf("unknown query %s (try Q1..Q12)\n", name.c_str());
    return 1;
  }

  for (const NamedQuery& nq : L4AllQuerySet()) {
    for (ConjunctMode mode : {ConjunctMode::kExact, ConjunctMode::kApprox,
                              ConjunctMode::kRelax}) {
      RunOne(dataset, nq, mode, 10);
    }
    std::printf("\n");
  }
  return 0;
}
