// YAGO explorer: generates the synthetic YAGO-like graph and walks through
// the paper's running examples (Examples 1-3) plus the Fig. 9 query set.
//
//   $ ./build/examples/yago_explorer            # examples + full query set
//   $ ./build/examples/yago_explorer 0.05       # bigger scale factor
#include <cstdio>
#include <cstdlib>

#include "common/timer.h"
#include "datasets/query_sets.h"
#include "datasets/yago.h"
#include "eval/query_engine.h"

using namespace omega;

namespace {

void Show(const YagoDataset& d, const std::string& title,
          const std::string& conjunct, ConjunctMode mode, size_t top_k) {
  std::printf("%s\n  %s (%s)\n", title.c_str(), conjunct.c_str(),
              ConjunctModeToString(mode));
  Result<Query> query = MakeSingleConjunctQuery(conjunct, mode);
  if (!query.ok()) {
    std::printf("  parse error: %s\n\n", query.status().ToString().c_str());
    return;
  }
  QueryEngine engine(&d.graph, &d.ontology);
  QueryEngineOptions options;
  options.evaluator.max_live_tuples = 20000000;
  options.distance_aware = mode != ConjunctMode::kExact;

  Timer timer;
  Result<std::vector<QueryAnswer>> answers =
      engine.ExecuteTopK(*query, top_k, options);
  if (!answers.ok()) {
    std::printf("  failed: %s\n\n", answers.status().ToString().c_str());
    return;
  }
  std::printf("  %zu answers in %.2f ms\n", answers->size(),
              timer.ElapsedMs());
  size_t shown = 0;
  for (const QueryAnswer& a : *answers) {
    if (++shown > 4) {
      std::printf("    ...\n");
      break;
    }
    std::printf("    d=%d", a.distance);
    for (NodeId n : a.bindings) {
      std::printf("  %s", std::string(d.graph.NodeLabel(n)).c_str());
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  YagoOptions options;
  options.scale = argc > 1 ? std::atof(argv[1]) : 0.01;
  std::printf("Generating YAGO-like graph (scale %.3f) ...\n", options.scale);
  const YagoDataset dataset = GenerateYago(options);
  std::printf("  %zu nodes, %zu edges, %zu properties\n\n",
              dataset.graph.NumNodes(), dataset.graph.NumEdges(),
              dataset.graph.labels().size());

  const std::string example = "(UK, locatedIn-.gradFrom, ?X)";
  Show(dataset, "--- Example 1: exact query returns nothing ---", example,
       ConjunctMode::kExact, 10);
  Show(dataset,
       "--- Example 2: APPROX corrects the gradFrom direction (distance 1) "
       "---",
       example, ConjunctMode::kApprox, 10);
  Show(dataset,
       "--- Example 3: RELAX generalises gradFrom to "
       "relationLocatedByObject ---",
       example, ConjunctMode::kRelax, 10);

  std::printf("=== Fig. 9 query set ===\n\n");
  for (const NamedQuery& nq : YagoQuerySet()) {
    Show(dataset, "--- " + nq.name + " ---", nq.conjunct,
         ConjunctMode::kExact, 5);
  }
  return 0;
}
