// Ranked-join demo: multi-conjunct CRP queries with mixed exact and flexible
// conjuncts, streaming answers in non-decreasing total distance — the
// "ranked join for multi-conjunct queries" of §3.
//
//   $ ./build/examples/rankjoin_demo
#include <cstdio>

#include "datasets/l4all.h"
#include "eval/query_engine.h"
#include "rpq/query_parser.h"

using namespace omega;

namespace {

void Stream(const L4AllDataset& d, const std::string& text, size_t top_k) {
  std::printf("query: %s\n", text.c_str());
  Result<Query> query = ParseQuery(text);
  if (!query.ok()) {
    std::printf("  parse error: %s\n\n", query.status().ToString().c_str());
    return;
  }
  QueryEngine engine(&d.graph, &d.ontology);
  Result<std::unique_ptr<QueryResultStream>> stream = engine.Execute(*query);
  if (!stream.ok()) {
    std::printf("  failed: %s\n\n", stream.status().ToString().c_str());
    return;
  }
  QueryAnswer answer;
  size_t count = 0;
  while (count < top_k && (*stream)->Next(&answer)) {
    std::printf("  #%zu  total distance %d:", ++count, answer.distance);
    for (size_t i = 0; i < answer.bindings.size(); ++i) {
      std::printf("  ?%s=%s", (*stream)->head()[i].c_str(),
                  std::string(d.graph.NodeLabel(answer.bindings[i])).c_str());
    }
    std::printf("\n");
  }
  if (count == 0) std::printf("  (no answers)\n");
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Generating L4All L1 ...\n");
  const L4AllDataset dataset = GenerateL4All(L4AllScalePreset(1));
  std::printf("  %zu nodes, %zu edges\n\n", dataset.graph.NumNodes(),
              dataset.graph.NumEdges());

  // Chains of episodes: who follows whom.
  Stream(dataset, "(?A, ?B) <- (?A, next, ?B), (?B, qualif, ?Q)", 5);

  // Join an exact conjunct with an APPROXed one: prerequisites that are
  // *nearly* direct successors rank by how many edits were needed.
  Stream(dataset,
         "(?A, ?C) <- (?A, next, ?B), APPROX (?B, prereq, ?C)", 8);

  // Mix RELAX in: episodes classified under (a relaxation of) Librarians
  // that lead somewhere via next.
  Stream(dataset,
         "(?E, ?F) <- RELAX (Librarians, type-.job-, ?E), (?E, next, ?F)",
         8);

  // Same variable on both ends: episodes in a prereq cycle (none, in a
  // well-formed timeline).
  Stream(dataset, "(?X) <- (?X, prereq+, ?X)", 5);
  return 0;
}
