// The console layer of the paper's Figure 1: an interactive shell that
// loads or generates a dataset, accepts CRP queries with APPROX/RELAX, and
// returns answers incrementally in batches — "results are returned
// incrementally to the user in order of their increasing edit or relaxation
// distance, with users being able to specify a limit on the number of
// results returned in each phase".
//
//   $ ./build/examples/omega_shell                  # starts with L4All L1
//   omega> .help
//   omega> (?X) <- APPROX (Librarians, type-, ?X)
//   omega> .more                                    # next batch
//
// Also usable non-interactively:
//   $ echo '(?X) <- RELAX (Librarians, type-, ?X)' | ./build/examples/omega_shell
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "service/query_service.h"

#include "common/strings.h"
#include "common/timer.h"
#include "datasets/l4all.h"
#include "datasets/yago.h"
#include "eval/query_engine.h"
#include "net/admin_server.h"
#include "net/ops_routes.h"
#include "obs/event_log.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/process_metrics.h"
#include "obs/trace.h"
#include "ontology/ontology_io.h"
#include "plan/plan_node.h"
#include "rpq/query_parser.h"
#include "snapshot/snapshot_reader.h"
#include "snapshot/snapshot_writer.h"
#include "store/graph_io.h"

using namespace omega;

namespace {

class Shell {
 public:
  Shell() {
    std::fprintf(stderr, "loading default dataset (L4All L1) ...\n");
    L4AllDataset dataset = GenerateL4All(L4AllScalePreset(1));
    dataset_ = Dataset::FromParts(std::move(dataset.graph),
                                  std::move(dataset.ontology));
    RebuildEngine();
  }

  int Run() {
    std::string line;
    while (Prompt(), std::getline(std::cin, line)) {
      const std::string text{StripWhitespace(line)};
      if (text.empty()) continue;
      if (text == ".quit" || text == ".exit") break;
      if (text[0] == '.') {
        Command(text);
      } else {
        Query(text);
      }
    }
    return 0;
  }

 private:
  void Prompt() const {
    if (interactive_) std::printf("omega> ");
  }

  const GraphStore& graph() const { return dataset_->graph(); }

  void RebuildEngine() {
    engine_ = std::make_unique<QueryEngine>(
        &dataset_->graph(), dataset_->ontology(), dataset_->indexes());
    stream_.reset();
    history_.clear();  // .serve replays are per-dataset
    std::fprintf(stderr, "dataset: %zu nodes, %zu edges, %zu labels%s\n",
                 graph().NumNodes(), graph().NumEdges(),
                 graph().labels().size(),
                 dataset_->backing() != nullptr ? " (mmap snapshot)" : "");
    // The admin-plane service keeps serving across `.gen`/`.load`/`.snapshot
    // load`: hot-swap it to the new dataset so /metrics, /statusz and
    // /readyz describe what the shell now holds.
    if (admin_service_ != nullptr) {
      const Status status = admin_service_->SwapDataset(dataset_);
      if (status.ok()) {
        std::fprintf(stderr, "admin service swapped to the new dataset "
                             "(epoch %llu)\n",
                     static_cast<unsigned long long>(
                         admin_service_->dataset_epoch()));
      } else {
        std::printf("admin service swap failed: %s\n",
                    status.ToString().c_str());
      }
    }
  }

  void Command(const std::string& text) {
    auto words = Split(text, ' ', /*trim=*/true);
    const std::string& cmd = words[0];
    if (cmd == ".help") {
      std::printf(
          "  <query>                   e.g. (?X) <- APPROX (UK, a-.b, ?X)\n"
          "  .more                     next batch of the current query\n"
          "  .batch N                  answers per batch (default 10)\n"
          "  .gen l4all LEVEL          generate L4All L1..L4\n"
          "  .gen yago SCALE           generate the YAGO-like graph\n"
          "  .load GRAPH [ONTOLOGY]    load omega-graph-v1 / ontology files\n"
          "  .save GRAPH [ONTOLOGY]    save the current dataset\n"
          "  .snapshot save FILE       write the dataset as a binary snapshot\n"
          "  .snapshot load FILE       mmap-open a snapshot as the dataset\n"
          "  .snapshot info FILE       print a snapshot's header + sections\n"
          "  .swap FILE [W [C [R]]]    replay this session's queries through\n"
          "                            a QueryService and hot-swap to the\n"
          "                            snapshot FILE mid-run (epoch demo)\n"
          "  .costs INS DEL SUB        APPROX edit costs (default 1 1 1)\n"
          "  .opt da|disjunction on|off   toggle the §4.3 optimisations\n"
          "  .plan bushy|textual       join-order planning mode\n"
          "  .explain QUERY            show the chosen plan with estimates\n"
          "  .explain analyze QUERY    run QUERY to completion and show the\n"
          "                            plan with estimated vs actual rows\n"
          "  .metrics [FILE]           Prometheus-style metrics exposition\n"
          "  .trace on|off|show|save FILE   per-query trace spans (JSON)\n"
          "  .admin PORT [SLOW_US]     start the ops-plane HTTP server on\n"
          "                            127.0.0.1:PORT (0 = ephemeral) with a\n"
          "                            persistent QueryService + flight\n"
          "                            recorder (slow threshold SLOW_US)\n"
          "  .admin stop               shut the admin server down\n"
          "  .events [N]               recent structured events (swaps,\n"
          "                            snapshot opens, rejections, ...)\n"
          "  .events sink FILE         append events to FILE as JSONL\n"
          "  .slowlog [N]              flight-recorder slow-query log\n"
          "  .budget N                 live-tuple budget (0 = unlimited)\n"
          "  .serve [W [C [R]]]        replay this session's queries through a\n"
          "                            QueryService: W workers, C client\n"
          "                            threads, R requests each (default 4 4 25)\n"
          "  .stats                    per-operator counters of the last query\n"
          "  .node LABEL               inspect a node's edges\n"
          "  .quit\n");
    } else if (cmd == ".explain" && words.size() >= 3 &&
               words[1] == "analyze") {
      std::vector<std::string> rest(words.begin() + 2, words.end());
      ExplainAnalyze(Join(rest, " "));
    } else if (cmd == ".explain" && words.size() >= 2) {
      // Query text may contain spaces: rejoin the remaining words.
      std::vector<std::string> rest(words.begin() + 1, words.end());
      Explain(Join(rest, " "));
    } else if (cmd == ".metrics") {
      // Route through the admin-plane service's injected registry when one
      // is running, so `.metrics` and `GET /metrics` agree; fall back to
      // the process-global registry otherwise.
      MetricsRegistry* registry =
          EffectiveMetricsRegistry(admin_service_.get());
      UpdateProcessSelfMetrics(registry);
      const std::string rendered = registry->RenderText();
      if (words.size() >= 2) {
        std::FILE* f = std::fopen(words[1].c_str(), "w");
        if (f == nullptr) {
          std::printf("cannot open %s\n", words[1].c_str());
          return;
        }
        std::fwrite(rendered.data(), 1, rendered.size(), f);
        std::fclose(f);
        std::printf("wrote %zu bytes to %s\n", rendered.size(),
                    words[1].c_str());
      } else {
        std::printf("%s", rendered.c_str());
      }
    } else if (cmd == ".trace" && words.size() >= 2) {
      Trace(words);
    } else if (cmd == ".admin") {
      if (words.size() >= 2 && words[1] == "stop") {
        StopAdmin();
      } else if (words.size() >= 2) {
        const int port = std::atoi(words[1].c_str());
        if (port < 0 || port > 65535) {
          std::printf("port must be 0..65535 (0 = ephemeral)\n");
          return;
        }
        const uint64_t slow_us =
            words.size() > 2
                ? static_cast<uint64_t>(std::atoll(words[2].c_str()))
                : 0;
        StartAdmin(static_cast<uint16_t>(port), slow_us);
      } else if (admin_server_ != nullptr) {
        std::printf("admin server on http://%s:%u/ (.admin stop to stop)\n",
                    admin_server_->bind_address().c_str(),
                    admin_server_->port());
      } else {
        std::printf("admin server not running (.admin PORT to start)\n");
      }
    } else if (cmd == ".events") {
      if (words.size() >= 3 && words[1] == "sink") {
        const Status status = EventLog::Global()->AttachJsonlSink(words[2]);
        if (status.ok()) {
          std::printf("events now appended to %s as JSONL\n",
                      words[2].c_str());
        } else {
          std::printf("%s\n", status.ToString().c_str());
        }
        return;
      }
      const size_t max =
          words.size() > 1
              ? static_cast<size_t>(std::max(1, std::atoi(words[1].c_str())))
              : 32;
      const std::string text = EventLog::Global()->ToText(max);
      if (text.empty()) {
        std::printf("(no events recorded yet)\n");
      } else {
        std::printf("%s", text.c_str());
      }
    } else if (cmd == ".slowlog") {
      FlightRecorder* recorder =
          flight_recorder_ != nullptr
              ? flight_recorder_.get()
              : EffectiveFlightRecorder(admin_service_.get());
      if (recorder == nullptr) {
        std::printf("no flight recorder (start one with .admin PORT)\n");
        return;
      }
      const size_t max =
          words.size() > 1
              ? static_cast<size_t>(std::max(1, std::atoi(words[1].c_str())))
              : 16;
      std::printf("%s", recorder->SlowLogText(max).c_str());
    } else if (cmd == ".plan" && words.size() == 2) {
      if (words[1] == "textual") {
        options_.plan_mode = PlanMode::kTextual;
      } else if (words[1] == "bushy") {
        options_.plan_mode = PlanMode::kGreedyBushy;
      } else {
        std::printf("plan mode must be 'bushy' or 'textual'\n");
        return;
      }
      std::printf("plan mode: %s\n", words[1].c_str());
    } else if (cmd == ".more") {
      Fetch();
    } else if (cmd == ".batch" && words.size() == 2) {
      batch_size_ = std::max(1, std::atoi(words[1].c_str()));
      std::printf("batch size %zu\n", batch_size_);
    } else if (cmd == ".gen" && words.size() >= 2 && words[1] == "l4all") {
      const int level = words.size() > 2 ? std::atoi(words[2].c_str()) : 1;
      if (level < 1 || level > 4) {
        std::printf("level must be 1..4\n");
        return;
      }
      L4AllDataset dataset = GenerateL4All(L4AllScalePreset(level));
      dataset_ = Dataset::FromParts(std::move(dataset.graph),
                                    std::move(dataset.ontology));
      RebuildEngine();
    } else if (cmd == ".gen" && words.size() >= 2 && words[1] == "yago") {
      YagoOptions options;
      if (words.size() > 2) options.scale = std::atof(words[2].c_str());
      YagoDataset dataset = GenerateYago(options);
      dataset_ = Dataset::FromParts(std::move(dataset.graph),
                                    std::move(dataset.ontology));
      RebuildEngine();
    } else if (cmd == ".load" && words.size() >= 2) {
      Result<GraphStore> graph = LoadGraph(words[1]);
      if (!graph.ok()) {
        std::printf("%s\n", graph.status().ToString().c_str());
        return;
      }
      std::optional<Ontology> ontology;
      if (words.size() > 2) {
        Result<Ontology> loaded = LoadOntology(words[2]);
        if (!loaded.ok()) {
          std::printf("%s\n", loaded.status().ToString().c_str());
          return;
        }
        ontology = std::move(loaded).value();
      } else {
        ontology = Ontology();  // empty: RELAX unavailable
      }
      dataset_ = Dataset::FromParts(std::move(graph).value(),
                                    std::move(ontology));
      RebuildEngine();
    } else if (cmd == ".save" && words.size() >= 2) {
      Status status = SaveGraph(graph(), words[1]);
      if (status.ok() && words.size() > 2) {
        if (dataset_->ontology() == nullptr) {
          std::printf("no ontology to save\n");
          return;
        }
        status = SaveOntology(*dataset_->ontology(), words[2]);
      }
      std::printf("%s\n", status.ToString().c_str());
    } else if (cmd == ".snapshot" && words.size() == 3) {
      Snapshot(words[1], words[2]);
    } else if (cmd == ".swap" && words.size() >= 2) {
      const size_t workers =
          words.size() > 2 ? std::max(1, std::atoi(words[2].c_str())) : 4;
      const size_t clients =
          words.size() > 3 ? std::max(1, std::atoi(words[3].c_str())) : 4;
      const size_t repeat =
          words.size() > 4 ? std::max(1, std::atoi(words[4].c_str())) : 25;
      SwapDemo(words[1], workers, clients, repeat);
    } else if (cmd == ".costs" && words.size() == 4) {
      options_.evaluator.approx.insertion_cost = std::atoi(words[1].c_str());
      options_.evaluator.approx.deletion_cost = std::atoi(words[2].c_str());
      options_.evaluator.approx.substitution_cost =
          std::atoi(words[3].c_str());
      std::printf("APPROX costs: ins=%d del=%d sub=%d\n",
                  options_.evaluator.approx.insertion_cost,
                  options_.evaluator.approx.deletion_cost,
                  options_.evaluator.approx.substitution_cost);
    } else if (cmd == ".opt" && words.size() == 3) {
      const bool on = words[2] == "on";
      if (words[1] == "da") {
        options_.distance_aware = on;
      } else if (words[1] == "disjunction") {
        options_.decompose_alternation = on;
      }
      std::printf("distance-aware=%d decompose-alternation=%d\n",
                  options_.distance_aware, options_.decompose_alternation);
    } else if (cmd == ".budget" && words.size() == 2) {
      options_.evaluator.max_live_tuples =
          static_cast<size_t>(std::atoll(words[1].c_str()));
      std::printf("budget %zu live tuples\n",
                  options_.evaluator.max_live_tuples);
    } else if (cmd == ".serve") {
      const size_t workers =
          words.size() > 1 ? std::max(1, std::atoi(words[1].c_str())) : 4;
      const size_t clients =
          words.size() > 2 ? std::max(1, std::atoi(words[2].c_str())) : 4;
      const size_t repeat =
          words.size() > 3 ? std::max(1, std::atoi(words[3].c_str())) : 25;
      Serve(workers, clients, repeat);
    } else if (cmd == ".stats") {
      if (stream_ == nullptr) {
        std::printf("no active query\n");
        return;
      }
      if (stream_->plan() != nullptr) {
        std::printf("%s", stream_->ExplainString().c_str());
      }
      const EvaluatorStats stats = stream_->stats();
      std::printf(
          "tuples popped %llu, pushed %llu, expansions %llu, neighbour "
          "fetches %llu, seeds %llu, max |D_R| %llu, max join live %llu, "
          "rounds %llu\n",
          static_cast<unsigned long long>(stats.tuples_popped),
          static_cast<unsigned long long>(stats.tuples_pushed),
          static_cast<unsigned long long>(stats.succ_expansions),
          static_cast<unsigned long long>(stats.neighbor_group_fetches),
          static_cast<unsigned long long>(stats.seeds_added),
          static_cast<unsigned long long>(stats.max_dictionary_size),
          static_cast<unsigned long long>(stats.max_join_live),
          static_cast<unsigned long long>(stats.rounds));
    } else if (cmd == ".node" && words.size() >= 2) {
      // Node labels may contain spaces: rejoin the remaining words.
      std::vector<std::string> rest(words.begin() + 1, words.end());
      InspectNode(Join(rest, " "));
    } else {
      std::printf("unknown command (try .help)\n");
    }
  }

  void InspectNode(const std::string& label) {
    auto node = graph().FindNode(label);
    if (!node) {
      std::printf("no node labelled '%s'\n", label.c_str());
      return;
    }
    std::printf("node #%u '%s', degree %zu\n", *node, label.c_str(),
                graph().Degree(*node));
    for (LabelId l = 0; l < graph().labels().size(); ++l) {
      for (NodeId m : graph().Neighbors(*node, l, Direction::kOutgoing)) {
        std::printf("  --%s--> %s\n",
                    std::string(graph().labels().Name(l)).c_str(),
                    std::string(graph().NodeLabel(m)).c_str());
      }
      for (NodeId m : graph().Neighbors(*node, l, Direction::kIncoming)) {
        std::printf("  <--%s-- %s\n",
                    std::string(graph().labels().Name(l)).c_str(),
                    std::string(graph().NodeLabel(m)).c_str());
      }
    }
  }

  void Snapshot(const std::string& verb, const std::string& path) {
    if (verb == "save") {
      Timer timer;
      const Status status =
          WriteSnapshot(graph(), dataset_->ontology(), path);
      if (!status.ok()) {
        std::printf("%s\n", status.ToString().c_str());
        return;
      }
      std::printf("wrote %s in %.1f ms\n", path.c_str(), timer.ElapsedMs());
    } else if (verb == "load") {
      Timer timer;
      Result<std::shared_ptr<const Dataset>> dataset =
          SnapshotReader::Open(path);
      if (!dataset.ok()) {
        std::printf("%s\n", dataset.status().ToString().c_str());
        return;
      }
      dataset_ = std::move(dataset).value();
      std::fprintf(stderr, "opened %s in %.1f ms\n", path.c_str(),
                   timer.ElapsedMs());
      RebuildEngine();
    } else if (verb == "info") {
      Result<SnapshotInfo> info = SnapshotReader::Inspect(path);
      if (!info.ok()) {
        std::printf("%s\n", info.status().ToString().c_str());
        return;
      }
      std::printf("%s", info->ToString().c_str());
    } else {
      std::printf(".snapshot verb must be save, load or info\n");
    }
  }

  /// Hot-swap demonstration: replays the session's queries like `.serve`,
  /// but halfway through the run another thread calls SwapDataset() with
  /// the snapshot at `path` — in-flight queries drain on the old epoch,
  /// later admissions answer from the new one, and the per-epoch counts
  /// show the cutover. The shell's own dataset/engine are left untouched.
  void SwapDemo(const std::string& path, size_t workers, size_t clients,
                size_t repeat) {
    if (history_.empty()) {
      std::printf(
          "no queries to replay yet — run a few queries first, then .swap\n");
      return;
    }
    Result<std::shared_ptr<const Dataset>> next = SnapshotReader::Open(path);
    if (!next.ok()) {
      std::printf("%s\n", next.status().ToString().c_str());
      return;
    }
    QueryServiceOptions service_options;
    service_options.num_workers = workers;
    service_options.max_queue = std::max<size_t>(64, clients * 2);
    service_options.engine = options_;
    QueryService service(dataset_, service_options);

    const size_t total = clients * repeat;
    std::atomic<size_t> ok{0}, errors{0}, submitted{0};
    std::atomic<size_t> epoch_counts[2] = {{0}, {0}};
    Timer timer;
    std::thread swapper([&] {
      // Swap once roughly mid-run.
      while (submitted.load() < total / 2) {
        std::this_thread::yield();
      }
      const Status status = service.SwapDataset(*next);
      if (!status.ok()) {
        std::printf("swap failed: %s\n", status.ToString().c_str());
      }
    });
    std::vector<std::thread> client_threads;
    client_threads.reserve(clients);
    for (size_t c = 0; c < clients; ++c) {
      client_threads.emplace_back([&, c] {
        for (size_t r = 0; r < repeat; ++r) {
          QueryRequest request;
          request.query = Clone(history_[(c + r) % history_.size()]);
          request.top_k = batch_size_;
          request.bypass_cache = (c + r) % 4 == 0;
          ++submitted;
          const QueryResponse response =
              service.Execute(std::move(request));
          if (response.status.ok()) {
            ++ok;
            ++epoch_counts[response.epoch % 2];
          } else {
            ++errors;
          }
        }
      });
    }
    for (std::thread& t : client_threads) t.join();
    swapper.join();
    const double elapsed_ms = timer.ElapsedMs();

    std::printf(
        "%zu requests on %zu workers in %.1f ms => %.0f qps; %zu ok, "
        "%zu failed\n",
        total, service.num_workers(), elapsed_ms,
        elapsed_ms > 0 ? 1000.0 * static_cast<double>(total) / elapsed_ms
                       : 0.0,
        ok.load(), errors.load());
    std::printf(
        "hot swap to '%s': %zu answers served by epoch 0 (old dataset), "
        "%zu by epoch 1 (snapshot)\n",
        path.c_str(), epoch_counts[0].load(), epoch_counts[1].load());
    std::printf("%s", service.stats().ToString().c_str());
  }

  void Explain(const std::string& text) {
    Result<omega::Query> query = ParseQuery(text);
    if (!query.ok()) {
      std::printf("%s\n", query.status().ToString().c_str());
      return;
    }
    Result<std::string> rendered = engine_->ExplainQuery(*query, options_);
    if (!rendered.ok()) {
      std::printf("%s\n", rendered.status().ToString().c_str());
      return;
    }
    std::printf("%s", rendered->c_str());
  }

  /// EXPLAIN ANALYZE: executes the query to completion (answers are counted,
  /// not printed) and renders the plan tree with each operator's estimated
  /// vs actual cardinality and the mis-estimate ratio.
  void ExplainAnalyze(const std::string& text) {
    Result<omega::Query> query = ParseQuery(text);
    if (!query.ok()) {
      std::printf("%s\n", query.status().ToString().c_str());
      return;
    }
    QueryEngineOptions options = options_;
    if (trace_enabled_) {
      trace_ = std::make_unique<TraceRecorder>();
      options.evaluator.trace = trace_.get();
    }
    Timer timer;
    Result<std::unique_ptr<QueryResultStream>> stream =
        engine_->Execute(*query, options);
    if (!stream.ok()) {
      std::printf("%s\n", stream.status().ToString().c_str());
      return;
    }
    size_t answers = 0;
    QueryAnswer answer;
    while ((*stream)->Next(&answer)) ++answers;
    const double elapsed_ms = timer.ElapsedMs();
    if (!(*stream)->status().ok()) {
      std::printf("query failed: %s\n",
                  (*stream)->status().ToString().c_str());
      return;
    }
    std::printf("%s", (*stream)->ExplainString().c_str());
    std::printf("(%zu answers in %.2f ms)\n", answers, elapsed_ms);
    if (trace_ != nullptr && (*stream)->plan() != nullptr) {
      RecordOperatorTrace(*(*stream)->plan(), trace_.get());
    }
  }

  void Trace(const std::vector<std::string>& words) {
    const std::string& verb = words[1];
    if (verb == "on") {
      trace_enabled_ = true;
      std::printf("tracing on: each query records spans (.trace show)\n");
    } else if (verb == "off") {
      trace_enabled_ = false;
      trace_.reset();
      std::printf("tracing off\n");
    } else if (verb == "show") {
      const std::string json = CurrentTraceJson();
      if (json.empty()) {
        std::printf("no trace recorded (.trace on, then run a query)\n");
        return;
      }
      std::printf("%s\n", json.c_str());
    } else if (verb == "save" && words.size() >= 3) {
      const std::string json = CurrentTraceJson();
      if (json.empty()) {
        std::printf("no trace recorded (.trace on, then run a query)\n");
        return;
      }
      std::FILE* f = std::fopen(words[2].c_str(), "w");
      if (f == nullptr) {
        std::printf("cannot open %s\n", words[2].c_str());
        return;
      }
      std::fwrite(json.data(), 1, json.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
      std::printf("wrote %zu bytes to %s\n", json.size() + 1,
                  words[2].c_str());
    } else {
      std::printf(".trace verb must be on, off, show or save FILE\n");
    }
  }

  /// `.trace show`/`save` source: the interactively recorded trace when one
  /// exists, otherwise the newest slow-query trace captured by the admin
  /// plane's flight recorder (so `.trace save` works on served traffic too).
  std::string CurrentTraceJson() const {
    if (trace_ != nullptr) return trace_->ToJson();
    const FlightRecorder* recorder =
        flight_recorder_ != nullptr
            ? flight_recorder_.get()
            : EffectiveFlightRecorder(admin_service_.get());
    if (recorder == nullptr) return "";
    const std::vector<FlightRecorder::SlowQuery> slow = recorder->Slow(0);
    for (auto it = slow.rbegin(); it != slow.rend(); ++it) {
      if (!it->trace_json.empty()) return it->trace_json;
    }
    return "";
  }

  void StartAdmin(uint16_t port, uint64_t slow_threshold_us) {
    if (admin_server_ != nullptr) {
      std::printf("admin server already on http://%s:%u/ (.admin stop "
                  "first)\n",
                  admin_server_->bind_address().c_str(),
                  admin_server_->port());
      return;
    }
    FlightRecorderOptions recorder_options;
    if (slow_threshold_us > 0) {
      recorder_options.slow_threshold_us = slow_threshold_us;
    }
    flight_recorder_ =
        std::make_unique<FlightRecorder>(recorder_options);
    QueryServiceOptions service_options;
    service_options.num_workers = 4;
    service_options.engine = options_;
    service_options.flight_recorder = flight_recorder_.get();
    admin_service_ = std::make_unique<QueryService>(dataset_,
                                                    service_options);
    AdminServerOptions server_options;
    server_options.port = port;
    admin_server_ = std::make_unique<AdminServer>(server_options);
    OpsPlaneOptions ops;
    ops.recorder = flight_recorder_.get();
    ops.service = admin_service_.get();
    RegisterOpsRoutes(admin_server_.get(), ops);
    const Status status = admin_server_->Start();
    if (!status.ok()) {
      std::printf("%s\n", status.ToString().c_str());
      admin_server_.reset();
      admin_service_.reset();
      return;
    }
    std::printf(
        "admin server on http://%s:%u/ — /metrics /healthz /readyz "
        "/statusz /tracez /eventz (slow threshold %llu us; .admin stop "
        "to shut down)\n",
        admin_server_->bind_address().c_str(), admin_server_->port(),
        static_cast<unsigned long long>(
            flight_recorder_->slow_threshold_us()));
  }

  void StopAdmin() {
    if (admin_server_ == nullptr) {
      std::printf("admin server not running\n");
      return;
    }
    // Server first (its handlers read the service), then the service; the
    // flight recorder stays so `.slowlog` keeps working after `.admin stop`.
    admin_server_->Shutdown();
    admin_server_.reset();
    admin_service_.reset();
    std::printf("admin server stopped\n");
  }

  /// The Figure-1 console serves one user; `.serve` shows the same engine
  /// behind the new serving layer: it replays this session's queries from
  /// `clients` concurrent threads against a QueryService sharing the
  /// current (frozen) graph + ontology, then prints throughput and the
  /// per-class serving statistics.
  void Serve(size_t workers, size_t clients, size_t repeat) {
    if (history_.empty()) {
      std::printf(
          "no queries to replay yet — run a few queries first, then .serve\n");
      return;
    }
    // With the admin plane up, replay through its persistent service so the
    // traffic lands in /metrics, /statusz and the flight recorder; otherwise
    // spin up an ephemeral service as before.
    std::unique_ptr<QueryService> local_service;
    QueryService* service = admin_service_.get();
    if (service != nullptr) {
      std::printf("(replaying through the admin-plane service: %zu workers)\n",
                  service->num_workers());
    } else {
      QueryServiceOptions service_options;
      service_options.num_workers = workers;
      service_options.max_queue = std::max<size_t>(64, clients * 2);
      service_options.engine = options_;
      local_service =
          std::make_unique<QueryService>(dataset_, service_options);
      service = local_service.get();
    }

    std::atomic<size_t> ok{0}, errors{0};
    Timer timer;
    std::vector<std::thread> client_threads;
    client_threads.reserve(clients);
    for (size_t c = 0; c < clients; ++c) {
      client_threads.emplace_back([&, c] {
        for (size_t r = 0; r < repeat; ++r) {
          QueryRequest request;
          request.query = Clone(history_[(c + r) % history_.size()]);
          request.top_k = batch_size_;
          // Every fourth request skips the cache so the engine keeps
          // seeing concurrent load even once everything is cached.
          request.bypass_cache = (c + r) % 4 == 0;
          if (service->Execute(std::move(request)).status.ok()) {
            ++ok;
          } else {
            ++errors;
          }
        }
      });
    }
    for (std::thread& t : client_threads) t.join();
    const double elapsed_ms = timer.ElapsedMs();

    const size_t total = clients * repeat;
    std::printf(
        "%zu requests (%zu distinct queries) on %zu workers in %.1f ms "
        "=> %.0f qps; %zu ok, %zu failed\n",
        total, history_.size(), service->num_workers(), elapsed_ms,
        elapsed_ms > 0 ? 1000.0 * static_cast<double>(total) / elapsed_ms
                       : 0.0,
        ok.load(), errors.load());
    std::printf("%s", service->stats().ToString().c_str());
  }

  void Query(const std::string& text) {
    Result<omega::Query> query = ParseQuery(text);
    if (!query.ok()) {
      std::printf("%s\n", query.status().ToString().c_str());
      return;
    }
    // Remember the query for `.serve` replay (bounded, deduplicated on the
    // cache key so replays mix distinct queries, not one repeated line).
    if (history_.size() < 32) {
      const std::string key = query->CanonicalKey();
      bool known = false;
      for (const omega::Query& q : history_) {
        if (q.CanonicalKey() == key) {
          known = true;
          break;
        }
      }
      if (!known) history_.push_back(Clone(*query));
    }
    QueryEngineOptions options = options_;
    if (trace_enabled_) {
      // A fresh recorder per query: the engine records plan / compile /
      // index-probe spans into it, Fetch adds the operator totals once the
      // stream drains, and `.trace show` dumps the JSON.
      trace_ = std::make_unique<TraceRecorder>();
      options.evaluator.trace = trace_.get();
    }
    Result<std::unique_ptr<QueryResultStream>> stream =
        engine_->Execute(*query, options);
    if (!stream.ok()) {
      std::printf("%s\n", stream.status().ToString().c_str());
      return;
    }
    stream_ = std::move(stream).value();
    emitted_ = 0;
    finished_ = false;
    Fetch();
  }

  void Fetch() {
    if (stream_ == nullptr) {
      std::printf("no active query\n");
      return;
    }
    if (finished_) {
      std::printf("(no more answers; %zu total)\n", emitted_);
      return;
    }
    Timer timer;
    QueryAnswer answer;
    size_t in_batch = 0;
    while (in_batch < batch_size_ && stream_->Next(&answer)) {
      ++in_batch;
      std::printf("  #%zu  d=%d ", ++emitted_, answer.distance);
      for (size_t i = 0; i < answer.bindings.size(); ++i) {
        std::printf(" ?%s=%s", stream_->head()[i].c_str(),
                    std::string(graph().NodeLabel(answer.bindings[i]))
                        .c_str());
      }
      std::printf("\n");
    }
    if (!stream_->status().ok()) {
      std::printf("query failed: %s\n",
                  stream_->status().ToString().c_str());
      stream_.reset();
      return;
    }
    if (in_batch < batch_size_) {
      // Keep the drained stream around: .stats still renders its plan tree
      // with the per-operator counters of the completed run.
      finished_ = true;
      if (trace_enabled_ && trace_ != nullptr && stream_->plan() != nullptr) {
        RecordOperatorTrace(*stream_->plan(), trace_.get());
      }
      std::printf("(no more answers; %zu total, %.2f ms)\n", emitted_,
                  timer.ElapsedMs());
    } else {
      std::printf("(batch of %zu in %.2f ms; .more for the next batch)\n",
                  in_batch, timer.ElapsedMs());
    }
  }

  /// The current dataset (owned in-memory build or mmap-backed snapshot);
  /// shared so `.serve`/`.swap` services and their in-flight queries keep
  /// it alive across a mid-session `.gen`/`.load`/`.snapshot load`.
  std::shared_ptr<const Dataset> dataset_;
  std::unique_ptr<QueryEngine> engine_;
  std::unique_ptr<QueryResultStream> stream_;
  std::vector<omega::Query> history_;  // session queries replayed by .serve
  QueryEngineOptions options_;
  size_t batch_size_ = 10;
  size_t emitted_ = 0;
  bool finished_ = false;
  bool trace_enabled_ = false;          // .trace on|off
  std::unique_ptr<TraceRecorder> trace_;  // last traced query's spans
  /// Ops plane (`.admin`): a shell-owned flight recorder feeding a
  /// persistent QueryService, exposed over the embedded HTTP server.
  /// Declaration order matters — members destroy in reverse, so the server
  /// (whose handlers read the service) goes down first, then the service,
  /// then the recorder it writes into.
  std::unique_ptr<FlightRecorder> flight_recorder_;
  std::unique_ptr<QueryService> admin_service_;
  std::unique_ptr<AdminServer> admin_server_;
  bool interactive_ = isatty(0);
};

}  // namespace

int main() { return Shell().Run(); }
