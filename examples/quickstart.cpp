// Quickstart: build a small graph and ontology in code, then run the same
// conjunct in exact, APPROX and RELAX mode and watch the flexible operators
// recover answers the exact query misses.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "eval/query_engine.h"
#include "ontology/ontology.h"
#include "rpq/query_parser.h"
#include "store/graph_builder.h"

using namespace omega;

namespace {

void RunAndPrint(const QueryEngine& engine, const GraphStore& graph,
                 const std::string& text) {
  Result<Query> query = ParseQuery(text);
  if (!query.ok()) {
    std::printf("parse error: %s\n", query.status().ToString().c_str());
    return;
  }
  std::printf("%s\n", query->ToString().c_str());
  Result<std::vector<QueryAnswer>> answers = engine.ExecuteTopK(*query, 10);
  if (!answers.ok()) {
    std::printf("  failed: %s\n", answers.status().ToString().c_str());
    return;
  }
  if (answers->empty()) std::printf("  (no answers)\n");
  for (const QueryAnswer& answer : *answers) {
    std::printf("  distance %d:", answer.distance);
    for (size_t i = 0; i < answer.bindings.size(); ++i) {
      std::printf(" ?%s = %s", query->head[i].c_str(),
                  std::string(graph.NodeLabel(answer.bindings[i])).c_str());
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // A miniature of the paper's Examples 1-3: universities and a battle are
  // located in the UK; only people graduate from universities.
  GraphBuilder builder;
  auto edge = [&builder](const char* s, const char* l, const char* t) {
    Status status = builder.AddEdge(s, l, t);
    if (!status.ok()) std::printf("%s\n", status.ToString().c_str());
  };
  edge("oxford", "locatedIn", "UK");
  edge("cambridge", "locatedIn", "UK");
  edge("battle_of_hastings", "locatedIn", "UK");
  edge("battle_of_hastings", "happenedIn", "hastings");
  edge("alice", "gradFrom", "oxford");
  edge("bob", "gradFrom", "cambridge");
  // Class memberships: alice and bob are people.
  const NodeId person = builder.GetOrAddNode("Person");
  (void)builder.AddTypeEdge(builder.GetOrAddNode("alice"), person);
  (void)builder.AddTypeEdge(builder.GetOrAddNode("bob"), person);
  GraphStore graph = std::move(builder).Finalize();

  // Ontology: gradFrom and happenedIn share a super-property.
  OntologyBuilder ontology_builder;
  (void)ontology_builder.AddSubproperty("gradFrom", "relationLocatedByObject");
  (void)ontology_builder.AddSubproperty("happenedIn",
                                        "relationLocatedByObject");
  (void)ontology_builder.AddSubclass("Person", "Agent");
  Result<Ontology> ontology = std::move(ontology_builder).Finalize();
  if (!ontology.ok()) {
    std::printf("ontology error: %s\n", ontology.status().ToString().c_str());
    return 1;
  }

  QueryEngine engine(&graph, &*ontology);

  std::printf("--- Exact: asks for things in the UK that graduated "
              "(nothing does) ---\n");
  RunAndPrint(engine, graph, "(?X) <- (UK, locatedIn-.gradFrom, ?X)");

  std::printf("--- APPROX: one substitution flips gradFrom to gradFrom-, "
              "finding the graduates ---\n");
  RunAndPrint(engine, graph, "(?X) <- APPROX (UK, locatedIn-.gradFrom, ?X)");

  std::printf("--- RELAX: gradFrom generalises to relationLocatedByObject, "
              "matching happenedIn ---\n");
  RunAndPrint(engine, graph, "(?X) <- RELAX (UK, locatedIn-.gradFrom, ?X)");

  std::printf("--- Multi-conjunct: graduates of UK universities "
              "(join on ?U) ---\n");
  RunAndPrint(engine, graph,
              "(?P, ?U) <- (?U, locatedIn, UK), (?P, gradFrom, ?U)");
  return 0;
}
